"""Fault-resilience benchmark: throughput degradation vs injected faults.

Sweeps PageRank on one skewed bench graph across escalating fault
scenarios — clean, bit-flip rates, a latency-spike burst, and a dead
channel forcing degradation — and reports the effective MTEPS (useful
edges over *total* simulated cycles, overhead included) plus what the
resilient layer absorbed.  The clean scenario doubles as the
zero-overhead check: it must reproduce the fault-free cycle count
exactly.
"""

from repro.faults import (
    BitFlipFault,
    DeadChannelFault,
    FaultPlan,
    LatencySpikeFault,
)
from repro.reporting import format_table, write_report

from conftest import bench_framework

PR_ITERATIONS = 10

#: (label, FaultPlan) scenarios, mildest first.
SCENARIOS = (
    ("clean", FaultPlan()),
    ("flips 0.5%", FaultPlan(
        seed=11, bit_flips=(BitFlipFault(probability=0.005),),
    )),
    ("flips 2%", FaultPlan(
        seed=11, bit_flips=(BitFlipFault(probability=0.02),),
    )),
    ("spike 16x", FaultPlan(
        seed=11, latency_spikes=(LatencySpikeFault(
            channel=0, duration_cycles=120_000.0, multiplier=16.0,
        ),),
    )),
    ("dead channel", FaultPlan(
        seed=11, dead_channels=(DeadChannelFault(
            channel=0, onset_cycle=10_000.0,
        ),),
    )),
)


def test_fault_resilience_overhead(benchmark, datasets):
    fw = bench_framework("U280", num_pipelines=6)
    pre = fw.preprocess(datasets["HD"])
    baseline = fw.run_pagerank(pre, max_iterations=PR_ITERATIONS)
    results = {}

    def run_all():
        results.clear()
        for label, plan in SCENARIOS:
            results[label] = fw.run_pagerank(
                pre, max_iterations=PR_ITERATIONS, fault_plan=plan
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, run in results.items():
        health = run.health
        rows.append([
            label,
            f"{run.mteps:,.0f}",
            f"{run.mteps / baseline.mteps:.2f}x",
            str(health.fault_count),
            str(health.retries),
            str(health.replans),
            f"{health.overhead_fraction:.0%}",
            health.final_label,
        ])
    text = format_table(
        ["scenario", "MTEPS", "vs clean", "faults", "retries",
         "re-plans", "overhead", "final"],
        rows,
        title="PR throughput under injected faults (resilient runtime)",
    )
    write_report("fault_resilience", text)

    # Zero-fault resilience costs exactly nothing.
    clean = results["clean"]
    assert clean.total_cycles == baseline.total_cycles
    # Every scenario still converges to the same fixed point.
    for label, run in results.items():
        assert run.converged, label
    # Throughput degrades monotonically with fault pressure within the
    # bit-flip family, and every faulted scenario pays some overhead.
    assert results["flips 2%"].mteps <= results["flips 0.5%"].mteps
    assert results["dead channel"].health.replans >= 1
