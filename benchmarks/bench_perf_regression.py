"""Perf-regression bench for the execution acceleration layer.

Unlike the figure benches (pytest-benchmark), this is a standalone
script: CI runs it twice — once serial, once with ``--jobs 4`` against
the serial run as ``--baseline`` — and fails the build when the
parallel digests drift from the serial ones or the speedup on the
parallel-friendly benches (chaos campaign, model sweep, fleet soak)
falls below ``--min-speedup``.

Timings are medians over ``--reps`` repetitions and are additionally
reported *normalized* by a small numpy calibration loop, so numbers
from different machines land on a comparable scale.  Digests cover the
full serialized outcome of each bench, which is how "parallel execution
preserves bit-identical reports" is enforced rather than assumed.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_regression.py \
        --jobs 1 --out BENCH_perf_serial.json
    PYTHONPATH=src python benchmarks/bench_perf_regression.py \
        --jobs 4 --baseline BENCH_perf_serial.json \
        --min-speedup 1.5 --out BENCH_perf.json
"""

import argparse
import hashlib
import json
import os
import statistics
import sys
import time

import numpy as np

BENCH_SCHEMA = "regraph-bench-perf/v1"
COMPILED_SCHEMA = "regraph-bench-compiled/v1"

#: Channel variants for the compiled cache-miss bench: each is a set of
#: field overrides applied to the default HbmTimingParams — the sweep
#: shape (same plan, fresh channel binding per point) whose cost the
#: compiled core exists to collapse.
COMPILED_CHANNEL_VARIANTS = (
    {},
    {"min_latency": 24.0},
    {"max_latency": 80.0},
    {"latency_per_stride_byte": 0.02},
    {"max_outstanding": 8},
    {"max_outstanding": 48},
    {"burst_blocks_per_cycle": 0.5},
    {"min_latency": 12.0, "burst_blocks_per_cycle": 1.5},
)

#: Benches whose work actually fans out over workers; only these are
#: held to the ``--min-speedup`` gate.  ``pipeline_execute`` is serial
#: by construction (it measures the cache + vectorized kernels).
PARALLEL_BENCHES = ("chaos_campaign", "model_sweep", "fleet_soak")


def _digest(obj) -> str:
    """sha256 over a canonical JSON rendering of a bench outcome."""
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _calibration_seconds() -> float:
    """A fixed numpy workload; timings are divided by this to normalize
    across machines (same trick as pytest-benchmark's calibration)."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256))
    start = time.perf_counter()
    for _ in range(20):
        a = np.tanh(a @ a.T / 256.0)
    return time.perf_counter() - start


def bench_pipeline_execute(perf):
    """PageRank on HD through the full simulator (cache-accelerated)."""
    from repro.apps.pagerank import PageRank
    from repro.core.framework import ReGraph
    from repro.core.system import SystemSimulator
    from repro.graph.datasets import load_dataset

    graph = load_dataset("HD", scale=0.05, seed=1)
    framework = ReGraph("U280")
    pre = framework.preprocess(graph)
    sim = SystemSimulator(pre.plan, framework.platform, framework.channel)
    run = sim.run(PageRank(pre.graph), max_iterations=5)
    return {
        "iterations": run.iterations,
        "total_cycles": run.total_cycles,
        "props": hashlib.sha256(run.props.tobytes()).hexdigest(),
    }


def bench_chaos_campaign(perf):
    from repro.chaos import CampaignConfig, run_campaign

    config = CampaignConfig(seed=17, cells=8, max_iterations=20)
    report = run_campaign(config, shrink_failures=False, perf=perf)
    return report.to_dict()


def bench_model_sweep(perf):
    from repro.arch.config import PipelineConfig
    from repro.graph.datasets import load_dataset
    from repro.model.sweep import sensitivity_report

    graph = load_dataset("HD", scale=0.05, seed=1)
    report = sensitivity_report(
        graph, PipelineConfig(gather_buffer_vertices=1024), perf=perf
    )
    return {
        name: [
            (p.value, p.makespan_cycles, p.num_partitions, p.combo_label)
            for p in points
        ]
        for name, points in report.items()
    }


def bench_fleet_soak(perf):
    from repro.chaos.fleet_soak import FleetSoakConfig, run_fleet_soak

    config = FleetSoakConfig(seed=23, jobs=10, random_kills=1)
    result = run_fleet_soak(config, perf=perf)
    # The digest covers the FleetReport only: the perf stats beside it
    # legitimately differ between serial and parallel runs.
    return {"digest": result.report.digest(),
            "completed": result.report.completed}


BENCHES = {
    "pipeline_execute": bench_pipeline_execute,
    "chaos_campaign": bench_chaos_campaign,
    "model_sweep": bench_model_sweep,
    "fleet_soak": bench_fleet_soak,
}


def run_benches(perf, reps):
    from repro.perf import get_cache

    results = {}
    for name, fn in BENCHES.items():
        times = []
        digest = None
        for _ in range(reps):
            # Every rep starts cold so reps measure the same work and
            # serial-vs-parallel comparisons aren't warped by warm state.
            get_cache().clear()
            start = time.perf_counter()
            outcome = fn(perf)
            times.append(time.perf_counter() - start)
            rep_digest = _digest(outcome)
            if digest is None:
                digest = rep_digest
            elif digest != rep_digest:
                print(f"FAIL: {name} is not deterministic across reps "
                      f"({digest[:12]} vs {rep_digest[:12]})")
                sys.exit(1)
        results[name] = {
            "median_seconds": statistics.median(times),
            "reps": reps,
            "digest": digest,
        }
        print(f"  {name:>18}: {results[name]['median_seconds']:.3f} s "
              f"median, digest {digest[:12]}")
    return results


def run_compiled_bench(reps, min_speedup):
    """Cache-miss bench for the compiled simulation core.

    Times a channel-parameter sweep (one cold timing pass per variant)
    through the interpreted walk vs the compiled batched evaluator, on
    the same scheduling plan; asserts the busy sums are bit-identical
    at every point, and gates the median speedup when asked.  Also
    records per-app MTEPS under each path — the end-to-end numbers the
    figures quote — whose equality is enforced digest-style too.

    Returns ``(report, failed)``.
    """
    import dataclasses
    import statistics as stats

    from repro.compiled import (
        CompiledEngine,
        compile_plan,
        configure_compiled,
    )
    from repro.core.framework import ReGraph
    from repro.core.system import SystemSimulator
    from repro.graph.generators import rmat_graph
    from repro.hbm.channel import HbmChannelModel, HbmTimingParams
    from repro.perf import configure_cache, get_cache

    graph = rmat_graph(12, 16, seed=3)
    framework = ReGraph("U280")
    pre = framework.preprocess(graph)
    variants = [
        dataclasses.replace(HbmTimingParams(), **overrides)
        for overrides in COMPILED_CHANNEL_VARIANTS
    ]

    # Sweep bench: timing passes only, cache off so every variant is a
    # genuine miss on both paths.
    configure_cache(enabled=False)
    interp_times, compiled_times = [], []
    interp_sums = compiled_sums = None
    compile_seconds = None
    for _ in range(reps):
        configure_compiled(False)
        start = time.perf_counter()
        sums = []
        for params in variants:
            sim = SystemSimulator(
                pre.plan, framework.platform, HbmChannelModel(params)
            )
            report = sim.iteration_timing(graph.num_vertices)
            sums.append((report.little_cycles, report.big_cycles))
        interp_times.append(time.perf_counter() - start)
        interp_sums = sums

        configure_compiled(True)
        start = time.perf_counter()
        cplan = compile_plan(pre.plan)  # cold structure every rep
        compile_seconds = time.perf_counter() - start
        engine = CompiledEngine(cplan)
        start = time.perf_counter()
        sums = []
        for params in variants:
            little, big = engine.busy_cycles(HbmChannelModel(params))
            sums.append((little, big))
        compiled_times.append(time.perf_counter() - start)
        compiled_sums = sums
    configure_cache(enabled=True)

    failed = False
    if interp_sums != compiled_sums:
        print("FAIL: compiled busy sums differ from interpreted sums")
        failed = True
    interp_median = stats.median(interp_times)
    compiled_median = stats.median(compiled_times)
    speedup = interp_median / max(compiled_median, 1e-9)
    print(f"  compiled sweep: interpreted {interp_median * 1e3:.1f} ms, "
          f"compiled {compiled_median * 1e3:.1f} ms "
          f"(+{(compile_seconds or 0) * 1e3:.1f} ms compile) -> "
          f"{speedup:.1f}x over {len(variants)} channel variants")
    if min_speedup is not None and speedup < min_speedup:
        print(f"FAIL: compiled cache-miss speedup {speedup:.2f}x < "
              f"required {min_speedup}x")
        failed = True

    # Per-app MTEPS under both paths (small graph, full runs).
    apps_report = {}
    app_graph = rmat_graph(10, 8, seed=5)
    for app in ("pagerank", "bfs", "closeness", "sssp", "wcc"):
        per_path = {}
        for compiled in (True, False):
            get_cache().clear()
            configure_compiled(compiled)
            fw = ReGraph("U280")
            start = time.perf_counter()
            run = _run_app(fw, app, app_graph)
            seconds = time.perf_counter() - start
            key = "compiled" if compiled else "interpreted"
            per_path[key] = {
                "mteps": run.mteps,
                "total_cycles": run.total_cycles,
                "wall_seconds": seconds,
            }
        if (per_path["compiled"]["total_cycles"]
                != per_path["interpreted"]["total_cycles"]):
            print(f"FAIL: {app} total_cycles differ between paths")
            failed = True
        apps_report[app] = per_path
        print(f"  {app:>18}: {per_path['compiled']['mteps']:.0f} MTEPS "
              f"(both paths, cycles identical)")
    configure_compiled(True)

    return {
        "schema": COMPILED_SCHEMA,
        "graph": {"kind": "rmat", "scale": 12, "edge_factor": 16, "seed": 3},
        "variants": len(variants),
        "reps": reps,
        "interpreted_median_seconds": interp_median,
        "compiled_median_seconds": compiled_median,
        "compile_seconds": compile_seconds,
        "speedup": speedup,
        "sums_identical": interp_sums == compiled_sums,
        "apps": apps_report,
    }, failed


def run_functional_bench(reps, min_speedup):
    """Cache-miss convergence bench for the compiled functional pass.

    Per app: one preprocessed plan, then full convergence runs (timing
    + functional, the cache disabled so every task is a genuine miss)
    through the interpreted per-task walk vs the compiled batched
    engine.  Preprocessing is excluded — it is identical on both paths
    and would mask the functional-pass ratio.  Bit-identity of cycles
    and final properties is asserted at every point; the median overall
    speedup is gated when asked (skipped on single-CPU machines, the
    same leniency the parallel gate applies).

    Returns ``(report_section, failed)``.
    """
    import statistics as stats

    from repro.apps.bfs import BreadthFirstSearch
    from repro.apps.closeness import ClosenessCentrality
    from repro.apps.pagerank import PageRank
    from repro.apps.sssp import SingleSourceShortestPaths
    from repro.apps.wcc import WeaklyConnectedComponents, symmetrized
    from repro.check.runner import with_random_weights
    from repro.compiled import configure_compiled, functional_engine
    from repro.core.framework import ReGraph
    from repro.core.system import SystemSimulator
    from repro.graph.generators import rmat_graph
    from repro.perf import configure_cache

    graph = rmat_graph(12, 16, seed=3)
    framework = ReGraph("U280")
    pre = framework.preprocess(graph)
    weighted_pre = framework.preprocess(with_random_weights(graph, seed=5))
    sym_pre = framework.preprocess(symmetrized(graph))
    root = pre.to_internal_vertex(0)

    cases = {
        "pagerank": (pre, lambda: PageRank(pre.graph)),
        "bfs": (pre, lambda: BreadthFirstSearch(pre.graph, root=root)),
        "closeness": (
            pre, lambda: ClosenessCentrality(pre.graph, root=root)
        ),
        "sssp": (
            weighted_pre,
            lambda: SingleSourceShortestPaths(
                weighted_pre.graph,
                root=weighted_pre.to_internal_vertex(0),
            ),
        ),
        "wcc": (sym_pre, lambda: WeaklyConnectedComponents(sym_pre.graph)),
    }

    configure_cache(enabled=False)
    # Charge structure lowering separately, once (it is reused across
    # every iteration, app and rep sharing the plan).
    configure_compiled(True)
    for case_pre in {id(p): p for p, _ in cases.values()}.values():
        case_pre.plan.__dict__.pop("_functional_engine", None)
    start = time.perf_counter()
    for case_pre in {id(p): p for p, _ in cases.values()}.values():
        functional_engine(case_pre.plan)
    lower_seconds = time.perf_counter() - start

    failed = False
    apps_report = {}
    speedups = []
    for app, (case_pre, make_app) in cases.items():
        times = {"compiled": [], "interpreted": []}
        outcomes = {}
        for _ in range(reps):
            for compiled in (True, False):
                configure_compiled(compiled)
                sim = SystemSimulator(
                    case_pre.plan, framework.platform, framework.channel
                )
                start = time.perf_counter()
                run = sim.run(make_app(), max_iterations=30)
                key = "compiled" if compiled else "interpreted"
                times[key].append(time.perf_counter() - start)
                outcome = {
                    "iterations": run.iterations,
                    "total_cycles": run.total_cycles,
                    "props": hashlib.sha256(run.props.tobytes()).hexdigest(),
                }
                if key in outcomes and outcomes[key] != outcome:
                    print(f"FAIL: {app} {key} run not deterministic")
                    failed = True
                outcomes[key] = outcome
        if outcomes["compiled"] != outcomes["interpreted"]:
            print(f"FAIL: {app} compiled functional outcome differs from "
                  f"interpreted (bit-identity broken)")
            failed = True
        interp = stats.median(times["interpreted"])
        compiled_median = stats.median(times["compiled"])
        speedup = interp / max(compiled_median, 1e-9)
        speedups.append(speedup)
        apps_report[app] = {
            "interpreted_median_seconds": interp,
            "compiled_median_seconds": compiled_median,
            "speedup": speedup,
            "iterations": outcomes["compiled"]["iterations"],
            "outcome_identical": (
                outcomes["compiled"] == outcomes["interpreted"]
            ),
        }
        print(f"  {app:>18}: interpreted {interp * 1e3:.1f} ms, "
              f"compiled {compiled_median * 1e3:.1f} ms -> "
              f"{speedup:.1f}x functional convergence")
    configure_cache(enabled=True)
    configure_compiled(True)

    median_speedup = stats.median(speedups)
    print(f"  functional pass: {median_speedup:.1f}x median speedup "
          f"(+{lower_seconds * 1e3:.1f} ms one-time lowering)")
    if min_speedup is not None:
        if (os.cpu_count() or 1) < 2:
            print(f"  (skipping {min_speedup}x functional gate: "
                  f"single-CPU machine)")
        elif median_speedup < min_speedup:
            print(f"FAIL: functional-pass speedup {median_speedup:.2f}x < "
                  f"required {min_speedup}x")
            failed = True

    return {
        "graph": {"kind": "rmat", "scale": 12, "edge_factor": 16, "seed": 3},
        "reps": reps,
        "lower_seconds": lower_seconds,
        "median_speedup": median_speedup,
        "apps": apps_report,
    }, failed


def _run_app(framework, app, graph):
    """Name-dispatched app run (the chaos campaign's mapping)."""
    if app == "pagerank":
        return framework.run_pagerank(graph, max_iterations=8)
    if app == "bfs":
        return framework.run_bfs(graph, root=0, max_iterations=8)
    if app == "closeness":
        return framework.run_closeness(graph, root=0, max_iterations=8)
    if app == "sssp":
        from repro.apps.sssp import SingleSourceShortestPaths
        from repro.check.runner import with_random_weights

        pre = framework.preprocess(with_random_weights(graph, seed=5))
        root = pre.to_internal_vertex(0)
        return framework.run(
            pre,
            lambda g: SingleSourceShortestPaths(g, root=root),
            max_iterations=8,
        )
    if app == "wcc":
        from repro.apps.wcc import WeaklyConnectedComponents, symmetrized

        return framework.run(
            symmetrized(graph), WeaklyConnectedComponents, max_iterations=8
        )
    raise ValueError(app)


def compare_to_baseline(report, baseline_path, min_speedup):
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failed = False
    for name, bench in report["benches"].items():
        base = baseline["benches"].get(name)
        if base is None:
            continue
        if bench["digest"] != base["digest"]:
            print(f"FAIL: {name} digest differs from baseline "
                  f"({bench['digest'][:12]} vs {base['digest'][:12]}) — "
                  f"parallel execution changed the outcome")
            failed = True
            continue
        speedup = base["median_seconds"] / max(bench["median_seconds"], 1e-9)
        bench["speedup_vs_baseline"] = speedup
        print(f"  {name:>18}: {speedup:.2f}x vs baseline")
        if name not in PARALLEL_BENCHES or min_speedup is None:
            continue
        if (os.cpu_count() or 1) < 2:
            print(f"  (skipping {min_speedup}x gate on {name}: "
                  f"single-CPU machine cannot parallelize)")
        elif speedup < min_speedup:
            print(f"FAIL: {name} speedup {speedup:.2f}x < "
                  f"required {min_speedup}x")
            failed = True
    return failed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = serial)")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per bench; the median is kept")
    parser.add_argument("--seed", type=int, default=1,
                        help="recorded in the report for provenance")
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)),
            "results", "BENCH_perf.json",
        ),
        help="report path (default benchmarks/results/BENCH_perf.json)",
    )
    parser.add_argument("--baseline", default=None,
                        help="earlier BENCH_perf.json to diff against")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail if a parallel-friendly bench beats the "
                             "baseline by less than this factor")
    parser.add_argument("--compiled-out", default=None,
                        help="also run the compiled-core cache-miss bench "
                             "and write its report to this path")
    parser.add_argument("--min-compiled-speedup", type=float, default=None,
                        help="fail if the compiled sweep beats the "
                             "interpreted sweep by less than this factor "
                             "(implies the compiled bench)")
    parser.add_argument("--min-functional-speedup", type=float, default=None,
                        help="fail if the compiled functional pass beats "
                             "the interpreted walk on the convergence "
                             "sweep by less than this factor")
    args = parser.parse_args(argv)

    from repro.perf import PerfConfig

    perf = PerfConfig(workers=args.jobs)
    perf.apply()
    calibration = _calibration_seconds()
    print(f"perf regression bench: jobs={args.jobs} reps={args.reps} "
          f"(calibration {calibration * 1e3:.1f} ms)")
    benches = run_benches(perf, args.reps)
    for bench in benches.values():
        bench["normalized"] = bench["median_seconds"] / calibration

    functional, functional_failed = run_functional_bench(
        args.reps, args.min_functional_speedup
    )

    report = {
        "schema": BENCH_SCHEMA,
        "jobs": args.jobs,
        "seed": args.seed,
        "calibration_seconds": calibration,
        "benches": benches,
        "functional": functional,
    }
    failed = functional_failed
    if args.baseline:
        failed = compare_to_baseline(
            report, args.baseline, args.min_speedup
        ) or failed
    out_dir = os.path.dirname(args.out)
    if out_dir:
        os.makedirs(out_dir, exist_ok=True)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"report written to {args.out}")

    if args.compiled_out or args.min_compiled_speedup is not None:
        compiled_report, compiled_failed = run_compiled_bench(
            args.reps, args.min_compiled_speedup
        )
        failed = failed or compiled_failed
        compiled_out = args.compiled_out or "BENCH_compiled.json"
        with open(compiled_out, "w") as fh:
            json.dump(compiled_report, fh, indent=2)
        print(f"compiled report written to {compiled_out}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
