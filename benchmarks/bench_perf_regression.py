"""Perf-regression bench for the execution acceleration layer.

Unlike the figure benches (pytest-benchmark), this is a standalone
script: CI runs it twice — once serial, once with ``--jobs 4`` against
the serial run as ``--baseline`` — and fails the build when the
parallel digests drift from the serial ones or the speedup on the
parallel-friendly benches (chaos campaign, model sweep, fleet soak)
falls below ``--min-speedup``.

Timings are medians over ``--reps`` repetitions and are additionally
reported *normalized* by a small numpy calibration loop, so numbers
from different machines land on a comparable scale.  Digests cover the
full serialized outcome of each bench, which is how "parallel execution
preserves bit-identical reports" is enforced rather than assumed.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_regression.py \
        --jobs 1 --out BENCH_perf_serial.json
    PYTHONPATH=src python benchmarks/bench_perf_regression.py \
        --jobs 4 --baseline BENCH_perf_serial.json \
        --min-speedup 1.5 --out BENCH_perf.json
"""

import argparse
import hashlib
import json
import os
import statistics
import sys
import time

import numpy as np

BENCH_SCHEMA = "regraph-bench-perf/v1"

#: Benches whose work actually fans out over workers; only these are
#: held to the ``--min-speedup`` gate.  ``pipeline_execute`` is serial
#: by construction (it measures the cache + vectorized kernels).
PARALLEL_BENCHES = ("chaos_campaign", "model_sweep", "fleet_soak")


def _digest(obj) -> str:
    """sha256 over a canonical JSON rendering of a bench outcome."""
    blob = json.dumps(obj, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _calibration_seconds() -> float:
    """A fixed numpy workload; timings are divided by this to normalize
    across machines (same trick as pytest-benchmark's calibration)."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((256, 256))
    start = time.perf_counter()
    for _ in range(20):
        a = np.tanh(a @ a.T / 256.0)
    return time.perf_counter() - start


def bench_pipeline_execute(perf):
    """PageRank on HD through the full simulator (cache-accelerated)."""
    from repro.apps.pagerank import PageRank
    from repro.core.framework import ReGraph
    from repro.core.system import SystemSimulator
    from repro.graph.datasets import load_dataset

    graph = load_dataset("HD", scale=0.05, seed=1)
    framework = ReGraph("U280")
    pre = framework.preprocess(graph)
    sim = SystemSimulator(pre.plan, framework.platform, framework.channel)
    run = sim.run(PageRank(pre.graph), max_iterations=5)
    return {
        "iterations": run.iterations,
        "total_cycles": run.total_cycles,
        "props": hashlib.sha256(run.props.tobytes()).hexdigest(),
    }


def bench_chaos_campaign(perf):
    from repro.chaos import CampaignConfig, run_campaign

    config = CampaignConfig(seed=17, cells=8, max_iterations=20)
    report = run_campaign(config, shrink_failures=False, perf=perf)
    return report.to_dict()


def bench_model_sweep(perf):
    from repro.arch.config import PipelineConfig
    from repro.graph.datasets import load_dataset
    from repro.model.sweep import sensitivity_report

    graph = load_dataset("HD", scale=0.05, seed=1)
    report = sensitivity_report(
        graph, PipelineConfig(gather_buffer_vertices=1024), perf=perf
    )
    return {
        name: [
            (p.value, p.makespan_cycles, p.num_partitions, p.combo_label)
            for p in points
        ]
        for name, points in report.items()
    }


def bench_fleet_soak(perf):
    from repro.chaos.fleet_soak import FleetSoakConfig, run_fleet_soak

    config = FleetSoakConfig(seed=23, jobs=10, random_kills=1)
    result = run_fleet_soak(config, perf=perf)
    # The digest covers the FleetReport only: the perf stats beside it
    # legitimately differ between serial and parallel runs.
    return {"digest": result.report.digest(),
            "completed": result.report.completed}


BENCHES = {
    "pipeline_execute": bench_pipeline_execute,
    "chaos_campaign": bench_chaos_campaign,
    "model_sweep": bench_model_sweep,
    "fleet_soak": bench_fleet_soak,
}


def run_benches(perf, reps):
    from repro.perf import get_cache

    results = {}
    for name, fn in BENCHES.items():
        times = []
        digest = None
        for _ in range(reps):
            # Every rep starts cold so reps measure the same work and
            # serial-vs-parallel comparisons aren't warped by warm state.
            get_cache().clear()
            start = time.perf_counter()
            outcome = fn(perf)
            times.append(time.perf_counter() - start)
            rep_digest = _digest(outcome)
            if digest is None:
                digest = rep_digest
            elif digest != rep_digest:
                print(f"FAIL: {name} is not deterministic across reps "
                      f"({digest[:12]} vs {rep_digest[:12]})")
                sys.exit(1)
        results[name] = {
            "median_seconds": statistics.median(times),
            "reps": reps,
            "digest": digest,
        }
        print(f"  {name:>18}: {results[name]['median_seconds']:.3f} s "
              f"median, digest {digest[:12]}")
    return results


def compare_to_baseline(report, baseline_path, min_speedup):
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failed = False
    for name, bench in report["benches"].items():
        base = baseline["benches"].get(name)
        if base is None:
            continue
        if bench["digest"] != base["digest"]:
            print(f"FAIL: {name} digest differs from baseline "
                  f"({bench['digest'][:12]} vs {base['digest'][:12]}) — "
                  f"parallel execution changed the outcome")
            failed = True
            continue
        speedup = base["median_seconds"] / max(bench["median_seconds"], 1e-9)
        bench["speedup_vs_baseline"] = speedup
        print(f"  {name:>18}: {speedup:.2f}x vs baseline")
        if name not in PARALLEL_BENCHES or min_speedup is None:
            continue
        if (os.cpu_count() or 1) < 2:
            print(f"  (skipping {min_speedup}x gate on {name}: "
                  f"single-CPU machine cannot parallelize)")
        elif speedup < min_speedup:
            print(f"FAIL: {name} speedup {speedup:.2f}x < "
                  f"required {min_speedup}x")
            failed = True
    return failed


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = serial)")
    parser.add_argument("--reps", type=int, default=3,
                        help="repetitions per bench; the median is kept")
    parser.add_argument("--seed", type=int, default=1,
                        help="recorded in the report for provenance")
    parser.add_argument("--out", default="BENCH_perf.json")
    parser.add_argument("--baseline", default=None,
                        help="earlier BENCH_perf.json to diff against")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail if a parallel-friendly bench beats the "
                             "baseline by less than this factor")
    args = parser.parse_args(argv)

    from repro.perf import PerfConfig

    perf = PerfConfig(workers=args.jobs)
    perf.apply()
    calibration = _calibration_seconds()
    print(f"perf regression bench: jobs={args.jobs} reps={args.reps} "
          f"(calibration {calibration * 1e3:.1f} ms)")
    benches = run_benches(perf, args.reps)
    for bench in benches.values():
        bench["normalized"] = bench["median_seconds"] / calibration

    report = {
        "schema": BENCH_SCHEMA,
        "jobs": args.jobs,
        "seed": args.seed,
        "calibration_seconds": calibration,
        "benches": benches,
    }
    failed = False
    if args.baseline:
        failed = compare_to_baseline(report, args.baseline, args.min_speedup)
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"report written to {args.out}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
