#!/usr/bin/env python
"""Design-space exploration: pipeline combinations and platforms.

Reproduces the workflow an accelerator architect runs with ReGraph:
enumerate every (M Little, N Big) combination the platform supports,
inspect the resource/frequency trade-off of each, sweep their simulated
throughput on a target graph, and compare the model-guided selection
against the empirically best point — on both the U280 and the budget U50.

Run:  python examples/design_space_exploration.py
"""

from repro import ReGraph
from repro.apps.pagerank import PageRank
from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.arch.platform import get_platform
from repro.arch.resources import report
from repro.core.system import SystemSimulator
from repro.graph.generators import rmat_graph
from repro.sched.scheduler import build_schedule

NUM_PIPELINES = 10
PR_ITERATIONS = 5


def sweep(platform_name: str, graph):
    framework = ReGraph(
        platform_name,
        pipeline=PipelineConfig(gather_buffer_vertices=2048),
        num_pipelines=NUM_PIPELINES,
    )
    pre = framework.preprocess(graph)
    print(f"\n=== {platform_name}: {NUM_PIPELINES} pipelines, "
          f"selected {pre.plan.accelerator.label} ===")
    print(f"{'combo':>6} | {'LUT':>6} | {'BRAM':>6} | {'MHz':>4} | "
          f"{'MTEPS':>7} |")
    best = ("", 0.0)
    for m in range(NUM_PIPELINES + 1):
        accel = AcceleratorConfig(
            m, NUM_PIPELINES - m, framework.pipeline
        )
        resources = report(accel, get_platform(platform_name))
        plan = build_schedule(
            pre.pset,
            framework.model,
            NUM_PIPELINES,
            forced_combo=(m, NUM_PIPELINES - m),
        )
        sim = SystemSimulator(plan, framework.platform, framework.channel)
        run = sim.run(
            PageRank(pre.graph),
            max_iterations=PR_ITERATIONS,
            functional=False,
        )
        marker = ""
        if accel.label == pre.plan.accelerator.label:
            marker = "  <- selected by the model"
        if run.mteps > best[1]:
            best = (accel.label, run.mteps)
        print(f"{accel.label:>6} | {resources.lut_util:6.1%} | "
              f"{resources.bram_util:6.1%} | "
              f"{resources.frequency_mhz:4.0f} | {run.mteps:7,.0f} |{marker}")
    print(f"best combination: {best[0]} at {best[1]:,.0f} MTEPS")
    return best


def main():
    graph = rmat_graph(16, 16, seed=3, name="rmat-16-16")
    print(f"target graph: V={graph.num_vertices:,} E={graph.num_edges:,}")
    u280_best = sweep("U280", graph)
    u50_best = sweep("U50", graph)
    print(f"\nU280 best {u280_best[1]:,.0f} MTEPS vs "
          f"U50 best {u50_best[1]:,.0f} MTEPS "
          f"({u280_best[1] / max(u50_best[1], 1):.2f}x)")


if __name__ == "__main__":
    main()
