#!/usr/bin/env python
"""Quickstart: run PageRank on a synthetic power-law graph with ReGraph.

Demonstrates the push-button workflow of Fig. 8: build a graph, let the
framework preprocess it (DBG grouping, destination-interval partitioning,
model-guided scheduling with automatic pipeline-combination selection)
and execute on the simulated heterogeneous accelerator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ReGraph
from repro.apps.reference import pagerank_reference
from repro.arch.config import PipelineConfig
from repro.graph.generators import power_law_graph


def main():
    # A web-crawl-like graph: 50K vertices, 500K edges, heavy skew.
    graph = power_law_graph(
        50_000, 500_000, exponent=2.0, seed=42, name="quickstart-web"
    )
    print(f"graph: {graph.name}  V={graph.num_vertices:,}  "
          f"E={graph.num_edges:,}  avg degree={graph.average_degree:.1f}")

    # The framework at 1/32 scale (buffers scaled with the graph; a real
    # U280 buffers 65,536 destination vertices per Gather PE).
    framework = ReGraph(
        "U280",
        pipeline=PipelineConfig(gather_buffer_vertices=2048),
        num_pipelines=14,
    )

    # Offline phase: DBG + partitioning + model-guided scheduling.
    pre = framework.preprocess(graph)
    plan = pre.plan
    print(f"\npreprocessing: DBG {pre.dbg_seconds * 1e3:.1f} ms, "
          f"partition+schedule {pre.schedule_seconds * 1e3:.1f} ms")
    print(f"selected accelerator: {plan.accelerator.label} "
          f"({len(plan.dense_indices)} dense / "
          f"{len(plan.sparse_indices)} sparse partitions)")
    print(f"resources: LUT {pre.resources.lut_util:.1%}, "
          f"BRAM {pre.resources.bram_util:.1%}, "
          f"URAM {pre.resources.uram_util:.1%}, "
          f"frequency {pre.resources.frequency_mhz:.0f} MHz")

    # Execute PageRank on the simulated accelerator.
    run = framework.run_pagerank(pre, max_iterations=20, tolerance=1e-7)
    print(f"\nPageRank: {run.iterations} iterations "
          f"({'converged' if run.converged else 'iteration cap'})")
    print(f"simulated time: {run.total_seconds * 1e3:.2f} ms "
          f"at {run.frequency_mhz:.0f} MHz -> {run.mteps:,.0f} MTEPS")

    # Validate the fixed-point accelerator result against a float
    # reference.
    reference = pagerank_reference(graph, iterations=run.iterations)
    error = np.max(np.abs(run.result - reference))
    print(f"max |rank - reference| = {error:.2e}")
    top = np.argsort(run.result)[::-1][:5]
    print("top-5 vertices by rank:", top.tolist())


if __name__ == "__main__":
    main()
