#!/usr/bin/env python
"""Writing a custom algorithm against the GAS programming interface.

The paper's Listing 1 shows PageRank in three user-defined functions;
this example implements two more applications the same way:

* single-source shortest paths (weighted edges), and
* a "trust propagation" variant — max-product propagation of a trust
  score from a seed vertex, showing a UDF set not shipped with the
  library.

It also emits the HLS-style artifacts the real framework would hand to
Vitis for the custom kernel (connectivity config + UDF header).

Run:  python examples/custom_algorithm.py
"""

from typing import Optional

import numpy as np

from repro import ReGraph
from repro.apps.gas import GasApp
from repro.apps.reference import sssp_reference
from repro.apps.sssp import SingleSourceShortestPaths
from repro.arch.config import PipelineConfig
from repro.codegen.generator import generate_accelerator, write_bundle
from repro.graph.generators import erdos_renyi_graph
from repro.utils.fixed_point import FixedPointFormat


class TrustPropagation(GasApp):
    """Max-product trust propagation (custom UDFs).

    Each vertex's trust is the maximum over incoming paths of the seed's
    trust attenuated by 0.5 per hop — expressed in Q30 fixed point so
    the Gather PEs keep II = 1, just like PageRank.
    """

    prop_dtype = np.int64
    gather_identity = 0
    max_iterations = 64

    def __init__(self, graph, seed_vertex: int, attenuation: float = 0.5):
        super().__init__(graph)
        self.fmt = FixedPointFormat()
        self.seed_vertex = seed_vertex
        self.attenuation_fx = int(self.fmt.from_float(attenuation))

    def scatter(self, src_props: np.ndarray, weights: Optional[np.ndarray]):
        """Attenuate the source's trust across the edge."""
        return self.fmt.multiply(src_props, self.attenuation_fx)

    def gather(self, buffered, values):
        """Keep the strongest trust path."""
        return np.maximum(buffered, values)

    def gather_at(self, buffer, idx, values):
        np.maximum.at(buffer, idx, values)

    def apply(self, old_props, accumulated):
        """Trust never decreases once established."""
        return np.maximum(old_props, accumulated)

    def init_props(self) -> np.ndarray:
        props = np.zeros(self.graph.num_vertices, dtype=np.int64)
        props[self.seed_vertex] = self.fmt.one
        return props

    def finalize(self, props):
        return self.fmt.to_float(props)


def main():
    rng = np.random.default_rng(11)
    graph = erdos_renyi_graph(20_000, 200_000, seed=11, name="custom-er")
    weighted = graph.with_weights(rng.integers(1, 64, graph.num_edges))

    framework = ReGraph(
        "U280",
        pipeline=PipelineConfig(gather_buffer_vertices=1024),
        num_pipelines=10,
    )

    # --- SSSP through the generic run() entry point --------------------
    pre = framework.preprocess(weighted)
    internal_root = pre.to_internal_vertex(0)
    run = framework.run(
        pre, lambda g: SingleSourceShortestPaths(g, root=internal_root)
    )
    reference = sssp_reference(weighted, 0)
    print(f"SSSP: {run.iterations} sweeps, {run.mteps:,.0f} MTEPS, "
          f"matches Bellman-Ford: {np.array_equal(run.props, reference)}")

    # --- Custom trust propagation --------------------------------------
    pre2 = framework.preprocess(graph)
    seed = pre2.to_internal_vertex(42)
    trust_run = framework.run(pre2, lambda g: TrustPropagation(g, seed))
    trust = trust_run.result
    print(f"trust propagation: {trust_run.iterations} sweeps, "
          f"{(trust > 0).sum():,} vertices reached, "
          f"seed trust {trust[42]:.2f}")
    hops = -np.log2(np.where(trust > 0, trust, 1.0))
    print(f"deepest trusted vertex: {hops.max():.0f} hops from the seed")

    # --- Emit the synthesizable-artifact bundle ------------------------
    bundle = generate_accelerator(
        pre2.plan.accelerator,
        framework.platform,
        udf_exprs={
            "scatter_expr": "fxmul(srcProp, ATTENUATION)",
            "gather_expr": "max(buf_prop, value)",
            "apply_expr": "max(tProp, source)",
        },
    )
    out = write_bundle(bundle, "examples/_generated")
    print(f"generated accelerator bundle ({bundle.label}) at {out}")


if __name__ == "__main__":
    main()
