#!/usr/bin/env python
"""Social-network analysis: BFS reachability and closeness centrality.

The scenario the paper's introduction motivates: interactive analytics
over a social graph.  Uses the Table III `pokec-relationships` stand-in,
runs BFS from a seed user and closeness centrality for influence
ranking, and shows how the two traversal apps share one preprocessing
pass (the scheduling plan is application-independent for a fixed GAS
pipeline configuration).

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import ReGraph
from repro.apps.bfs import UNVISITED
from repro.arch.config import PipelineConfig
from repro.graph.datasets import load_dataset


def main():
    # pokec-relationships at 1/64 of the published size.
    graph = load_dataset("PK", scale=1 / 64, seed=7)
    print(f"social graph: V={graph.num_vertices:,} E={graph.num_edges:,}")

    framework = ReGraph(
        "U280",
        pipeline=PipelineConfig(gather_buffer_vertices=1024),
        num_pipelines=14,
    )
    pre = framework.preprocess(graph)
    print(f"accelerator: {pre.plan.accelerator.label}, "
          f"{pre.pset.num_partitions} partitions "
          f"({len(pre.plan.dense_indices)} dense)")

    # --- BFS reachability from the most-followed user -----------------
    seed_user = int(np.argmax(graph.in_degrees()))
    bfs = framework.run_bfs(pre, root=seed_user)
    levels = bfs.props
    reached = levels < UNVISITED
    print(f"\nBFS from user {seed_user}: reached {reached.sum():,} of "
          f"{graph.num_vertices:,} users in {int(levels[reached].max())} hops")
    print(f"  {bfs.iterations} sweeps, {bfs.mteps:,.0f} MTEPS, "
          f"{bfs.total_seconds * 1e3:.2f} ms simulated")
    hist = np.bincount(levels[reached].astype(int))
    for depth, count in enumerate(hist):
        print(f"  hop {depth}: {count:,} users")

    # --- Closeness centrality for a few candidate influencers ---------
    print("\ncloseness centrality (influence ranking):")
    candidates = np.argsort(graph.out_degrees())[::-1][:4]
    scores = []
    for user in candidates:
        run = framework.run_closeness(pre, root=int(user))
        scores.append((float(run.result), int(user)))
        print(f"  user {int(user):7d}: closeness {run.result:.4f} "
              f"({run.mteps:,.0f} MTEPS)")
    best_score, best_user = max(scores)
    print(f"most central candidate: user {best_user} "
          f"(closeness {best_score:.4f})")


if __name__ == "__main__":
    main()
