#!/usr/bin/env python
"""Performance debugging: timelines, bottlenecks and tiering headroom.

When a graph underperforms, ReGraph's analysis tooling answers three
questions in order:

1. *Is the schedule balanced?* — render the per-pipeline Gantt chart;
2. *What binds each partition?* — attribute cycles to Eq. 1's terms
   (edge supply vs vertex access vs gather vs fixed overheads);
3. *Would the graph still fit if it grew 32x?* — check the HBM capacity
   and estimate the SSD-tiering penalty (the paper's future work).

Run:  python examples/performance_debugging.py
"""

from repro import ReGraph
from repro.arch.config import PipelineConfig
from repro.arch.trace import trace_plan
from repro.graph.datasets import load_dataset
from repro.hbm.tiered import (
    SsdTierConfig,
    estimate_tiered_plan,
    graph_needs_tiering,
)
from repro.model.bottleneck import compare_pipeline_choice


def main():
    graph = load_dataset("HW", scale=1 / 64, seed=3)
    print(f"graph: {graph.name}  V={graph.num_vertices:,} "
          f"E={graph.num_edges:,}")

    framework = ReGraph(
        "U280",
        pipeline=PipelineConfig(gather_buffer_vertices=1024),
        num_pipelines=8,
    )
    pre = framework.preprocess(graph)
    pre.plan.validate(expected_edges=graph.num_edges)
    print(f"accelerator {pre.plan.accelerator.label}, plan validated, "
          f"estimated balance {pre.plan.balance_ratio:.2f}\n")

    # 1. Timeline ------------------------------------------------------
    trace = trace_plan(pre.plan, framework.channel)
    print("per-pipeline timeline (one iteration):")
    print(trace.render_gantt(width=56))
    utils = trace.utilization()
    print(f"utilisation: min {min(utils.values()):.0%}, "
          f"max {max(utils.values()):.0%}\n")

    # 2. Bottleneck attribution ----------------------------------------
    parts = pre.pset.nonempty()
    print("bottleneck attribution (head / middle / tail partitions):")
    for partition in (parts[0], parts[len(parts) // 2], parts[-1]):
        analysis = compare_pipeline_choice(partition, framework.model)
        chosen = analysis["preferred"]
        breakdown = analysis[chosen]
        fracs = breakdown.fractions()
        print(f"  p{partition.index:<3} ({partition.num_edges:7,} edges) "
              f"-> {chosen:6}: dominant={breakdown.dominant:13} "
              f"[supply {fracs['edge_supply']:.0%}, "
              f"vertex {fracs['vertex_access']:.0%}, "
              f"gather {fracs['gather']:.0%}, "
              f"fixed {fracs['fixed']:.0%}]")

    # 3. Capacity headroom + tiering ------------------------------------
    grown_edges = graph.num_edges * 64 * 32   # hypothetical full+32x graph
    grown_vertices = graph.num_vertices * 64
    needs = graph_needs_tiering(grown_edges, 8, grown_vertices)
    print(f"\nif this graph grew to {grown_edges:,} edges: "
          f"{'needs SSD tiering' if needs else 'still fits HBM'}")
    if needs:
        for drives in (1, 4):
            config = SsdTierConfig(read_bytes_per_second=3.2e9 * drives)
            estimates = estimate_tiered_plan(
                pre.plan, pre.resources.frequency_mhz, config=config
            )
            worst = max(
                (e.slowdown for e in estimates if e.execute_seconds > 0),
                default=1.0,
            )
            print(f"  {drives} NVMe drive(s): worst pipeline slowdown "
                  f"{worst:.2f}x")


if __name__ == "__main__":
    main()
