#!/usr/bin/env python
"""A batch analytics service: many graphs, one FPGA.

The service scenario: a queue of graphs arrives (different sizes and
skews), each graph's model-guided scheduling picks a possibly different
pipeline combination, and reprogramming the FPGA between bitstreams
costs seconds.  The batch scheduler reorders the queue to group graphs
by selected bitstream, and the host runtime executes the plan.

Run:  python examples/batch_analytics_service.py
"""

from repro import ReGraph
from repro.arch.config import PipelineConfig
from repro.graph.generators import (
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
)
from repro.sched.batch import naive_batch, plan_batch


def build_queue():
    """A mixed queue: web crawls, a social graph, synthetic meshes."""
    return [
        power_law_graph(30_000, 250_000, exponent=2.1, seed=1, name="crawl-A"),
        rmat_graph(14, 16, seed=2, name="mesh-B"),
        power_law_graph(25_000, 300_000, exponent=1.5, seed=3, name="social-C"),
        erdos_renyi_graph(20_000, 200_000, seed=4, name="uniform-D"),
        power_law_graph(40_000, 280_000, exponent=2.0, seed=5, name="crawl-E"),
        rmat_graph(14, 8, seed=6, name="mesh-F"),
    ]


def main():
    framework = ReGraph(
        "U280",
        pipeline=PipelineConfig(gather_buffer_vertices=2048),
        num_pipelines=10,
    )
    queue = build_queue()
    print(f"queue: {len(queue)} graphs, "
          f"{sum(g.num_edges for g in queue):,} total edges\n")

    def estimate_run_seconds(pre):
        # 10 PR iterations at the modelled frequency.
        cycles = 10 * pre.plan.estimated_makespan
        return cycles / (pre.resources.frequency_mhz * 1e6)

    grouped = plan_batch(queue, framework.preprocess, estimate_run_seconds)
    fifo = naive_batch(queue, framework.preprocess, estimate_run_seconds)

    print(f"{'graph':>10} | {'combo':>6} | est run (ms)")
    for item in grouped.items:
        print(f"{item.graph_name:>10} | {item.combo_label:>6} | "
              f"{item.estimated_run_seconds * 1e3:10.2f}")

    print(f"\nFIFO order     : {fifo.num_reprograms} reprograms, "
          f"{fifo.total_seconds:.1f} s total")
    print(f"grouped order  : {grouped.num_reprograms} reprograms, "
          f"{grouped.total_seconds:.1f} s total")
    saved = fifo.total_seconds - grouped.total_seconds
    print(f"saved          : {saved:.1f} s "
          f"({saved / fifo.total_seconds:.0%} of the batch)")


if __name__ == "__main__":
    main()
