"""Tests for the baseline system models."""

import numpy as np
import pytest

from repro.baselines.energy import (
    PLATFORM_POWER_WATTS,
    efficiency_ratio,
    energy_efficiency_gteps_per_watt,
)
from repro.baselines.fpga import (
    ASIATICI,
    GRAPHLILY,
    TABLE5_PAPER_SPEEDUPS,
    THUNDERGP,
)
from repro.baselines.gunrock import GUNROCK_A100, GUNROCK_P100
from repro.baselines.ligra import LigraModel
from repro.baselines.resource_table import (
    TABLE1_DESIGNS,
    feasible_channel_summary,
    table1_rows,
)


class TestTable1:
    def test_projection_matches_paper_cells(self):
        for name, _res, projected, paper in table1_rows():
            # Projections agree with the published cells within rounding
            # except the measured anchors themselves.
            for ours, theirs in zip(projected[2:], paper[2:]):
                assert ours == pytest.approx(theirs, rel=0.01)

    def test_all_designs_blow_past_device_at_8_channels(self):
        for design in TABLE1_DESIGNS:
            assert design.utilization(8) > 1.0

    def test_nobody_reaches_8_channels(self):
        for name, channels in feasible_channel_summary().items():
            assert channels < 8

    def test_thundergp_four_channels_infeasible(self):
        tgp = [d for d in TABLE1_DESIGNS if d.name == "ThunderGP"][0]
        assert tgp.utilization(4) > 0.80


class TestFpgaBaselines:
    def test_reported_numbers_returned_verbatim(self):
        assert THUNDERGP.throughput_mteps("PR", "R21") == 5920.0
        assert GRAPHLILY.throughput_mteps("PR", "HW") == 7471.0
        assert ASIATICI.throughput_mteps("PR", "DB") == 920.0

    def test_unknown_graph_needs_model(self):
        with pytest.raises(KeyError):
            THUNDERGP.throughput_mteps("PR", "XX")

    def test_model_used_for_unknown_graph(self, small_rmat):
        mteps = THUNDERGP.throughput_mteps("PR", "XX", graph=small_rmat)
        assert mteps > 0

    def test_model_within_2x_of_reported(self):
        """The mechanistic model lands in the ballpark of the reported
        numbers for the graphs we can instantiate."""
        from repro.graph.datasets import load_dataset

        g = load_dataset("HW", scale=0.01, seed=1)
        modeled = THUNDERGP.modeled_mteps(g, "PR")
        reported = THUNDERGP.throughput_mteps("PR", "HW")
        assert reported / 2.5 < modeled < reported * 2.5

    def test_speedup_table_covers_all_table5_rows(self):
        assert len(TABLE5_PAPER_SPEEDUPS) == 24
        for (u50, u280) in TABLE5_PAPER_SPEEDUPS.values():
            assert u280 >= u50 * 0.9  # U280 at least matches U50


class TestLigra:
    def test_pr_throughput_positive(self, small_rmat):
        assert LigraModel().pagerank_mteps(small_rmat) > 0

    def test_denser_graph_faster(self):
        from repro.graph.generators import erdos_renyi_graph

        sparse = erdos_renyi_graph(10_000, 30_000, seed=0)
        dense = erdos_renyi_graph(10_000, 400_000, seed=0)
        m = LigraModel()
        assert m.pagerank_mteps(dense) > m.pagerank_mteps(sparse)

    def test_dispatch(self, small_rmat):
        m = LigraModel()
        assert m.throughput_mteps("PR", small_rmat) == m.pagerank_mteps(
            small_rmat
        )
        with pytest.raises(ValueError):
            m.throughput_mteps("nope", small_rmat)

    def test_direction_switching_bfs_correct(self, small_rmat):
        from repro.apps.reference import bfs_reference

        levels = LigraModel.bfs_levels(small_rmat, 0)
        np.testing.assert_array_equal(levels, bfs_reference(small_rmat, 0))


class TestGunrock:
    def test_a100_faster_than_p100(self, small_rmat):
        assert GUNROCK_A100.pagerank_mteps(small_rmat) > \
            GUNROCK_P100.pagerank_mteps(small_rmat)

    def test_pr_faster_than_bfs(self, small_rmat):
        assert GUNROCK_P100.pagerank_mteps(small_rmat) > \
            GUNROCK_P100.bfs_mteps(small_rmat)

    def test_dispatch_cc_uses_bfs(self, small_rmat):
        m = GUNROCK_P100
        assert m.throughput_mteps("CC", small_rmat) == m.bfs_mteps(small_rmat)


class TestEnergy:
    def test_power_table_matches_table6(self):
        assert PLATFORM_POWER_WATTS["U280"] == 35.0
        assert PLATFORM_POWER_WATTS["Xeon-6248R"] == 208.0
        assert PLATFORM_POWER_WATTS["P100"] == 176.0
        assert PLATFORM_POWER_WATTS["A100"] == 187.0

    def test_efficiency(self):
        assert energy_efficiency_gteps_per_watt(7.0, 35.0) == pytest.approx(0.2)

    def test_ratio(self):
        # Same throughput at 6x the power -> 6x worse efficiency.
        assert efficiency_ratio(10, 35, 10, 210) == pytest.approx(6.0)

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            energy_efficiency_gteps_per_watt(1.0, 0.0)
