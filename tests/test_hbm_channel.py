"""Tests for the HBM channel timing model."""

import numpy as np
import pytest

from repro.hbm.channel import BLOCK_BYTES, HbmChannelModel, HbmTimingParams


class TestRequestLatency:
    def test_zero_stride_is_min_latency(self, channel):
        assert channel.request_latency(0) == channel.params.min_latency

    def test_latency_monotonic_in_stride(self, channel):
        strides = np.array([0, 64, 256, 1024, 65536])
        lat = channel.request_latency(strides)
        assert np.all(np.diff(lat) >= 0)

    def test_latency_clamped_at_max(self, channel):
        assert (
            channel.request_latency(10**9) == channel.params.max_latency
        )

    def test_negative_stride_treated_as_distance(self, channel):
        assert channel.request_latency(-512) == channel.request_latency(512)

    def test_vectorised(self, channel):
        out = channel.request_latency(np.arange(5) * 100.0)
        assert out.shape == (5,)


class TestEffectiveCycles:
    def test_floor_is_one_cycle(self, channel):
        assert channel.effective_request_cycles(0) >= 1.0

    def test_outstanding_window_divides_latency(self):
        ch = HbmChannelModel(
            HbmTimingParams(min_latency=32, max_latency=64, max_outstanding=8)
        )
        assert ch.effective_request_cycles(0) == pytest.approx(4.0)

    def test_monotonic(self, channel):
        strides = np.array([0, 512, 4096, 32768])
        eff = channel.effective_request_cycles(strides)
        assert np.all(np.diff(eff) >= 0)


class TestBurst:
    def test_burst_zero_blocks(self, channel):
        assert channel.burst_cycles(0) == 0.0

    def test_burst_linear_in_blocks(self, channel):
        c100 = channel.burst_cycles(100)
        c200 = channel.burst_cycles(200)
        assert c200 - c100 == pytest.approx(100.0)

    def test_burst_includes_open_latency(self, channel):
        assert channel.burst_cycles(1) > 1.0

    def test_bandwidth(self, channel):
        assert channel.bandwidth_bytes_per_cycle() == BLOCK_BYTES


class TestValidation:
    def test_bad_outstanding_raises(self):
        with pytest.raises(ValueError):
            HbmChannelModel(HbmTimingParams(max_outstanding=0))

    def test_inverted_latency_band_raises(self):
        with pytest.raises(ValueError):
            HbmChannelModel(
                HbmTimingParams(min_latency=50, max_latency=20)
            )
