"""Fault-plan shrinking and repro bundles.

Includes the ISSUE acceptance regression fixture: a deliberately-failing
cell (an unpinned always-stall buried in noise events) that must shrink
to a minimal one-event plan whose bundle replays to the identical
failure digest.
"""

import pytest

from repro.chaos import (
    BUNDLE_SCHEMA,
    CellSpec,
    DEFAULT_CHAOS_POLICY,
    GraphSpec,
    ddmin,
    flatten_plan,
    load_bundle,
    make_bundle,
    rebuild_plan,
    replay_bundle,
    run_cell,
    shrink_cell,
    write_bundle,
)
from repro.errors import UserInputError
from repro.faults.plan import (
    BitFlipFault,
    DeadChannelFault,
    FaultPlan,
    LatencySpikeFault,
    PipelineStallFault,
)

#: The regression fixture: one fatal event (unpinned always-stall, which
#: no retry budget survives) buried under three survivable noise events.
REGRESSION_PLAN = FaultPlan(
    seed=3,
    dead_channels=(DeadChannelFault(channel=1, onset_cycle=4000.0),),
    latency_spikes=(LatencySpikeFault(channel=2, onset_cycle=1000.0),),
    bit_flips=(BitFlipFault(probability=0.01),),
    stalls=(PipelineStallFault(probability=1.0, pipeline=None),),
)


def regression_cell() -> CellSpec:
    return CellSpec(
        cell_id="regress-0", device="U280", app="pagerank",
        graph=GraphSpec(kind="rmat", vertices=512, edges=4096, seed=5),
        fault_plan=REGRESSION_PLAN,
    )


# ----------------------------------------------------------------------
# Event flattening
# ----------------------------------------------------------------------
class TestFlatten:
    def test_round_trip(self):
        events = flatten_plan(REGRESSION_PLAN)
        assert len(events) == 4
        assert rebuild_plan(REGRESSION_PLAN.seed, events) == REGRESSION_PLAN

    def test_subset_rebuild(self):
        events = flatten_plan(REGRESSION_PLAN)
        only_stall = [e for e in events if e[0] == "stalls"]
        plan = rebuild_plan(REGRESSION_PLAN.seed, only_stall)
        assert plan.dead_channels == () and plan.bit_flips == ()
        assert plan.stalls == REGRESSION_PLAN.stalls
        assert plan.seed == REGRESSION_PLAN.seed


# ----------------------------------------------------------------------
# ddmin on synthetic predicates
# ----------------------------------------------------------------------
class TestDdmin:
    def test_single_culprit(self):
        events = [("e", i) for i in range(8)]
        result = ddmin(events, lambda evs: ("e", 5) in evs)
        assert result == [("e", 5)]

    def test_pair_of_culprits(self):
        events = [("e", i) for i in range(10)]
        need = {("e", 2), ("e", 7)}
        result = ddmin(events, lambda evs: need <= set(evs))
        assert set(result) == need

    def test_everything_needed_stays(self):
        events = [("e", i) for i in range(4)]
        result = ddmin(events, lambda evs: len(evs) == 4)
        assert result == events


# ----------------------------------------------------------------------
# Shrinking real cells
# ----------------------------------------------------------------------
class TestShrinkCell:
    def test_regression_fixture_shrinks_to_one_event(self):
        cell = regression_cell()
        failure = run_cell(cell)
        assert failure.status == "crash"
        assert failure.category == "ResilienceExhaustedError"

        shrunk = shrink_cell(cell, failure)
        assert shrunk.original_events == 4
        assert shrunk.shrunk_events == 1
        assert not shrunk.exhausted
        assert shrunk.plan.stalls == REGRESSION_PLAN.stalls
        assert shrunk.plan.dead_channels == ()
        # The minimal plan still fails the same way.
        assert shrunk.result.signature == failure.signature

    def test_probe_budget_caps_work(self):
        cell = regression_cell()
        failure = run_cell(cell)
        shrunk = shrink_cell(cell, failure, max_probes=1)
        assert shrunk.exhausted
        assert shrunk.probes == 1
        # Whatever it settled on must still carry the failure.
        assert shrunk.result.signature == failure.signature

    def test_non_fault_failure_shrinks_to_empty(self, monkeypatch):
        # If the failure reproduces with zero fault events, the bug is
        # in the runtime and the shrink must say so (empty plan).
        import repro.chaos.shrink as shrink_mod

        cell = regression_cell()
        failure = run_cell(cell)

        def always_fails(trial, policy=None, bands=None):
            return failure

        monkeypatch.setattr(shrink_mod, "run_cell", always_fails)
        shrunk = shrink_mod.shrink_cell(cell, failure)
        assert shrunk.shrunk_events == 0
        assert shrunk.plan.is_empty


# ----------------------------------------------------------------------
# Bundles
# ----------------------------------------------------------------------
class TestBundles:
    def test_acceptance_shrink_bundle_replay(self, tmp_path):
        """ISSUE acceptance: shrink a deliberately-failing cell, write
        its bundle, replay it to the *identical* failure digest."""
        cell = regression_cell()
        failure = run_cell(cell)
        shrunk = shrink_cell(cell, failure)
        path = write_bundle(
            str(tmp_path), cell, failure, DEFAULT_CHAOS_POLICY,
            shrunk=shrunk,
        )

        bundle = load_bundle(path)
        assert bundle["schema"] == BUNDLE_SCHEMA
        assert bundle["shrink"]["shrunk_events"] == 1
        assert bundle["original_failure"]["digest"] == failure.digest

        replay = replay_bundle(path)
        assert replay.reproduced
        assert replay.actual_digest == bundle["failure"]["digest"]
        assert replay.result.status == "crash"

    def test_unshrunk_bundle_replays_original(self, tmp_path):
        cell = regression_cell()
        failure = run_cell(cell)
        path = write_bundle(
            str(tmp_path), cell, failure, DEFAULT_CHAOS_POLICY
        )
        bundle = load_bundle(path)
        assert bundle["shrunk_plan"] is None
        replay = replay_bundle(path)
        assert replay.reproduced
        assert replay.actual_digest == failure.digest

    def test_bundle_is_self_contained(self):
        # make_bundle output must survive a JSON round trip unchanged.
        import json

        cell = regression_cell()
        failure = run_cell(cell)
        bundle = make_bundle(cell, failure, DEFAULT_CHAOS_POLICY)
        assert json.loads(json.dumps(bundle)) == bundle

    def test_bad_schema_rejected(self, tmp_path):
        import json

        path = tmp_path / "bad.repro.json"
        path.write_text(json.dumps({"schema": "something/v99"}))
        with pytest.raises(UserInputError, match="schema"):
            load_bundle(str(path))
