"""Tests for the Eq. 1-4 analytic performance model."""

import numpy as np
import pytest

from repro.arch.big_pipeline import BigPipelineSim
from repro.arch.little_pipeline import LittlePipelineSim
from repro.graph.coo import EDGE_BYTES
from repro.hbm.channel import BLOCK_BYTES


class TestEdgeCosts:
    def test_floor_is_max_of_acse_and_proc(self, perf_model):
        # With 8 PEs at II 1, both C_acs_e and C_proc are 1/8.
        src = np.zeros(16, dtype=np.int64)
        costs = perf_model.edge_costs_little(src)
        assert np.all(costs == pytest.approx(EDGE_BYTES / BLOCK_BYTES))

    def test_little_cost_counts_gap_blocks(self, perf_model):
        src = np.array([0, 16 * 10], dtype=np.int64)  # gap of 10 blocks
        costs = perf_model.edge_costs_little(src)
        assert costs[1] == pytest.approx(10 * 16 * 4 / BLOCK_BYTES)

    def test_big_cost_zero_gap_uses_floor(self, perf_model):
        src = np.array([5, 5, 5], dtype=np.int64)
        costs = perf_model.edge_costs_big(src)
        assert costs[1] == costs[2] == pytest.approx(1 / 8)

    def test_big_new_block_pays_latency_fit(self, perf_model):
        src = np.array([0, 16], dtype=np.int64)  # next block
        costs = perf_model.edge_costs_big(src)
        assert costs[1] >= perf_model.big_fit.lower_bound

    def test_big_cost_bounded_above(self, perf_model):
        src = np.array([0, 10**6], dtype=np.int64)
        costs = perf_model.edge_costs_big(src)
        assert costs[1] <= perf_model.big_fit.upper_bound + 1e-9

    def test_empty(self, perf_model):
        assert perf_model.edge_costs_big(np.zeros(0)).size == 0
        assert perf_model.edge_costs_little(np.zeros(0)).size == 0


class TestPartitionEstimates:
    def test_kind_validation(self, perf_model, rmat_partitions):
        with pytest.raises(ValueError):
            perf_model.estimate_partition(rmat_partitions.nonempty()[0], "huge")

    def test_dense_head_ends_up_little(self, perf_model, rmat_partitions):
        # The head partition must land in the dense (Little) set — via
        # the per-partition comparison or the group-refinement pass.
        from repro.sched.inter import classify_partitions

        parts = rmat_partitions.nonempty()
        dense, _sparse, _tl, _tb = classify_partitions(parts, perf_model)
        assert 0 in dense

    def test_sparse_classified_big(self, perf_model, rmat_partitions):
        sparse = rmat_partitions.nonempty()[-1]
        tl = perf_model.estimate_partition(sparse, "little")
        tb = perf_model.estimate_partition(sparse, "big")
        assert tb < tl

    def test_big_constant_amortised(self, perf_model, rmat_partitions, config):
        sparse = rmat_partitions.nonempty()[-1]
        single = perf_model.estimate_big_group([sparse.src])
        per_partition = perf_model.estimate_partition(sparse, "big")
        # The per-partition estimate carries const/N_gpe, the execution
        # estimate carries the full constant.
        assert per_partition < single

    def test_group_gather_bound(self, perf_model, rmat_partitions):
        dense = rmat_partitions.nonempty()[0]
        est = perf_model.estimate_big_group([dense.src])
        assert est >= dense.num_edges  # one PE, II=1

    def test_empty_group_raises(self, perf_model):
        with pytest.raises(ValueError):
            perf_model.estimate_big_group([])


class TestModelVsSimulator:
    """Fig. 9's accuracy claim: ~4% (Big) and ~6% (Little) average error."""

    def _groups(self, rmat_partitions, config):
        parts = rmat_partitions.nonempty()
        n = config.n_gpe
        return [parts[i : i + n] for i in range(0, len(parts) - n + 1, n)]

    def test_little_error_band(self, perf_model, rmat_partitions, config, channel):
        sim = LittlePipelineSim(config, channel)
        errors = []
        for p in rmat_partitions.nonempty():
            measured = sim.execute(p)[0].total_cycles
            estimated = perf_model.estimate_little_execution(p.src)
            errors.append(abs(estimated - measured) / measured)
        assert np.mean(errors) < 0.12

    def test_big_error_band(self, perf_model, rmat_partitions, config, channel):
        sim = BigPipelineSim(config, channel)
        errors = []
        for group in self._groups(rmat_partitions, config):
            measured = sim.execute(group)[0].total_cycles
            estimated = perf_model.estimate_big_group([p.src for p in group])
            errors.append(abs(estimated - measured) / measured)
        assert np.mean(errors) < 0.12


class TestWindows:
    def test_window_weights_cover_all_edges(self, perf_model, rmat_partitions):
        p = rmat_partitions.nonempty()[0]
        weights = perf_model.window_weights(p.src, "little", 256)
        total = perf_model.edge_costs_little(p.src).sum()
        assert weights.sum() == pytest.approx(total)

    def test_window_count(self, perf_model, rmat_partitions):
        p = rmat_partitions.nonempty()[0]
        weights = perf_model.window_weights(p.src, "big", 100)
        assert weights.size == -(-p.num_edges // 100)

    def test_cut_points_monotonic(self, perf_model, rmat_partitions):
        p = rmat_partitions.nonempty()[0]
        cuts = perf_model.cut_points(p.src, "little", 4, window_edges=128)
        assert np.all(np.diff(cuts) >= 0)
        assert cuts[0] == 0 and cuts[-1] == p.num_edges

    def test_cut_points_balanced(self, perf_model, rmat_partitions):
        p = rmat_partitions.nonempty()[0]
        cuts = perf_model.cut_points(p.src, "little", 4, window_edges=64)
        costs = perf_model.edge_costs_little(p.src)
        chunk_sums = [
            costs[cuts[i]:cuts[i + 1]].sum() for i in range(4)
        ]
        assert max(chunk_sums) / max(min(chunk_sums), 1e-9) < 1.6
