"""Tests for BFS, Closeness Centrality, WCC and SSSP apps."""

import numpy as np
import pytest

from repro.apps.bfs import UNVISITED, BreadthFirstSearch
from repro.apps.closeness import ClosenessCentrality
from repro.apps.reference import (
    bfs_reference,
    closeness_reference,
    sssp_reference,
    wcc_reference,
)
from repro.apps.sssp import SingleSourceShortestPaths
from repro.apps.wcc import WeaklyConnectedComponents, symmetrized
from repro.graph.coo import Graph
from repro.graph.generators import erdos_renyi_graph


def _gas_run(app, max_iterations=200):
    """Plain edge-centric GAS loop (no simulator) for app-level tests."""
    graph = app.graph
    props = app.init_props()
    for i in range(max_iterations):
        acc = np.full(
            graph.num_vertices, app.gather_identity, dtype=app.prop_dtype
        )
        weights = graph.weights if app.uses_weights else None
        updates = app.scatter(props[graph.src], weights)
        app.gather_at(acc, graph.dst, updates)
        new_props = app.apply(props, acc)
        if app.has_converged(props, new_props, i):
            return new_props
        props = new_props
    return props


class TestBfs:
    def test_matches_reference(self, small_rmat):
        app = BreadthFirstSearch(small_rmat, root=0)
        levels = _gas_run(app)
        np.testing.assert_array_equal(levels, bfs_reference(small_rmat, 0))

    def test_root_level_zero(self, tiny_graph):
        app = BreadthFirstSearch(tiny_graph, root=2)
        levels = _gas_run(app)
        assert levels[2] == 0

    def test_fig1_graph_levels(self, tiny_graph):
        # 0->1->2->0, 0->3->4->{2,5}, 5->0
        levels = _gas_run(BreadthFirstSearch(tiny_graph, root=0))
        np.testing.assert_array_equal(levels, [0, 1, 2, 1, 2, 3])

    def test_unreachable_stays_unvisited(self):
        g = Graph(4, [0], [1])
        levels = _gas_run(BreadthFirstSearch(g, root=0))
        assert levels[2] == UNVISITED and levels[3] == UNVISITED

    def test_invalid_root_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            BreadthFirstSearch(tiny_graph, root=99)

    def test_scatter_keeps_unvisited_sentinel(self, tiny_graph):
        app = BreadthFirstSearch(tiny_graph)
        out = app.scatter(np.array([UNVISITED, 3], dtype=np.int64), None)
        assert out[0] == UNVISITED and out[1] == 4


class TestCloseness:
    def test_matches_reference(self, small_rmat):
        app = ClosenessCentrality(small_rmat, root=1)
        levels = _gas_run(app)
        assert app.finalize(levels) == pytest.approx(
            closeness_reference(small_rmat, 1)
        )

    def test_isolated_root_zero(self):
        g = Graph(3, [1], [2])
        app = ClosenessCentrality(g, root=0)
        assert app.finalize(_gas_run(app)) == 0.0

    def test_star_graph_closeness_one(self):
        # Root connected to all others at distance 1.
        g = Graph(5, [0, 0, 0, 0], [1, 2, 3, 4])
        app = ClosenessCentrality(g, root=0)
        assert app.finalize(_gas_run(app)) == pytest.approx(1.0)


class TestWcc:
    def test_matches_reference_on_symmetrized(self, small_uniform):
        g = symmetrized(small_uniform)
        app = WeaklyConnectedComponents(g)
        labels = _gas_run(app, max_iterations=500)
        ref = wcc_reference(g)
        # Same partition into components (labels are both min-IDs).
        np.testing.assert_array_equal(labels, ref)

    def test_two_components(self):
        g = symmetrized(Graph(6, [0, 1, 3, 4], [1, 2, 4, 5]))
        labels = _gas_run(WeaklyConnectedComponents(g))
        assert set(labels[:3]) == {0}
        assert set(labels[3:]) == {3}

    def test_symmetrized_doubles_edges(self, tiny_graph):
        assert symmetrized(tiny_graph).num_edges == 2 * tiny_graph.num_edges


class TestSssp:
    def _weighted(self, seed=0):
        g = erdos_renyi_graph(200, 2000, seed=seed)
        rng = np.random.default_rng(seed)
        return g.with_weights(rng.integers(1, 20, g.num_edges))

    def test_matches_reference(self):
        g = self._weighted()
        app = SingleSourceShortestPaths(g, root=0)
        dist = _gas_run(app, max_iterations=500)
        np.testing.assert_array_equal(dist, sssp_reference(g, 0))

    def test_unweighted_graph_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="weighted"):
            SingleSourceShortestPaths(tiny_graph)

    def test_negative_weights_rejected(self):
        g = Graph(3, [0, 1], [1, 2], weights=[1, -2])
        with pytest.raises(ValueError, match="non-negative"):
            SingleSourceShortestPaths(g)

    def test_triangle_inequality_respected(self):
        g = self._weighted(seed=3)
        dist = _gas_run(SingleSourceShortestPaths(g, root=0), 500)
        w = np.asarray(g.weights, dtype=np.int64)
        reached = dist[g.src] < 2**40
        slack = dist[g.dst[reached]] - (dist[g.src[reached]] + w[reached])
        assert np.all(slack <= 0)
