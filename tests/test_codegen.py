"""Tests for the accelerator code generator."""

import json

import pytest

from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.arch.platform import get_platform
from repro.codegen.generator import (
    generate_accelerator,
    generate_all_combinations,
    write_bundle,
)
from repro.codegen.slr import assign_slrs, crossing_count
from repro.codegen.templates import render_kernel_stub, render_udf_header


def _bundle(m=3, n=3):
    accel = AcceleratorConfig(m, n, PipelineConfig())
    return generate_accelerator(accel, get_platform("U280"))


class TestGenerateAccelerator:
    def test_kernel_inventory(self):
        bundle = _bundle(3, 4)
        kinds = [k.kind for k in bundle.kernels]
        assert kinds.count("little") == 3
        assert kinds.count("big") == 4
        assert kinds.count("apply") == 1
        assert kinds.count("writer") == 1

    def test_two_ports_per_pipeline(self):
        bundle = _bundle()
        for kernel in bundle.kernels:
            if kernel.kind in ("little", "big"):
                assert len(kernel.ports) == 2

    def test_ports_disjoint(self):
        bundle = _bundle(7, 7)
        seen = []
        for kernel in bundle.kernels:
            seen.extend(kernel.ports)
        assert len(seen) == len(set(seen))

    def test_slrs_within_platform(self):
        bundle = _bundle(7, 7)
        for kernel in bundle.kernels:
            assert 0 <= kernel.slr < 3

    def test_connectivity_has_sp_and_slr_lines(self):
        cfg = _bundle().connectivity_cfg
        assert "sp=little_pipeline_0.gmem0:HBM[" in cfg
        assert "slr=apply_0:SLR0" in cfg

    def test_manifest_roundtrips_json(self):
        bundle = _bundle()
        manifest = json.loads(json.dumps(bundle.to_manifest()))
        assert manifest["label"] == "3L3B"
        assert len(manifest["kernels"]) == len(bundle.kernels)


class TestCombinations:
    def test_one_bundle_per_combo(self):
        bundles = generate_all_combinations(get_platform("U280"))
        assert len(bundles) == 15
        assert {b.label for b in bundles} == {
            f"{m}L{14 - m}B" for m in range(15)
        }


class TestTemplates:
    def test_udf_header_contains_listing1_functions(self):
        header = render_udf_header()
        assert "accScatter" in header
        assert "accGather" in header
        assert "accApply" in header

    def test_custom_expressions_rendered(self):
        header = render_udf_header(gather_expr="min(buf_prop, value)")
        assert "min(buf_prop, value)" in header

    def test_kernel_stub(self):
        stub = render_kernel_stub("big_pipeline_0", "big", 1, [0, 1])
        assert "big_pipeline_0" in stub
        assert "vertex loader" in stub

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            render_kernel_stub("x", "weird", 0, [0])


class TestWriteBundle:
    def test_writes_all_artifacts(self, tmp_path):
        bundle = _bundle(2, 2)
        root = write_bundle(bundle, tmp_path)
        assert (root / "manifest.json").exists()
        assert (root / "connectivity.cfg").exists()
        assert (root / "regraph_udf.h").exists()
        assert len(list((root / "src").glob("*.cpp"))) == len(bundle.kernels)


class TestSlr:
    def test_named_roles_pinned(self):
        assignment = assign_slrs(["apply_0", "writer_0", "big_pipeline_0"], 3)
        assert assignment["apply_0"] == 0
        assert assignment["writer_0"] == 0

    def test_round_robin_spread(self):
        names = [f"big_pipeline_{i}" for i in range(6)]
        assignment = assign_slrs(names, 3)
        counts = [list(assignment.values()).count(s) for s in range(3)]
        assert max(counts) - min(counts) <= 1

    def test_single_slr_platform(self):
        assignment = assign_slrs(["apply_0", "little_pipeline_0"], 1)
        assert set(assignment.values()) == {0}

    def test_invalid_slr_count(self):
        with pytest.raises(ValueError):
            assign_slrs(["a"], 0)

    def test_crossing_count(self):
        assignment = {"a": 0, "b": 1, "c": 0}
        edges = [("a", "b"), ("a", "c"), ("b", "c")]
        assert crossing_count(assignment, edges) == 2
