"""Crash recovery acceptance: kill, recover, replay, compare.

The durability contract (docs/DURABILITY.md): a hard-killed journaled
fleet, recovered from disk, finishes with zero lost jobs, exactly-once
results, and a report digest bit-identical to a run that was never
killed.  These tests drive `FleetRuntime.recover` directly; the chaos
cell that composes crashes with storage corruption lives in
`tests/test_chaos_kill_restart.py`.
"""

import dataclasses

import pytest

from repro.chaos.fleet_soak import (
    FleetSoakConfig,
    build_pool,
    generate_jobs,
    generate_kills,
)
from repro.errors import FleetKilledError, UserInputError
from repro.faults.plan import StorageFault
from repro.fleet import FleetPolicy, FleetRuntime, JobJournal, ResultStore
from repro.fleet.journal import (
    apply_storage_fault,
    project_journal,
    read_journal,
)

#: Small but real: two device types, one mid-campaign replica kill.
CFG = FleetSoakConfig(seed=3, jobs=6, replicas=("U280", "U50"),
                      random_kills=1)
CRASH_AT = 4


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted in-memory run: ground-truth digest + events."""
    runtime = FleetRuntime(build_pool(CFG), FleetPolicy())
    report = runtime.run(generate_jobs(CFG), generate_kills(CFG))
    return runtime, report


def _crashed_run(tmp_path, halt=CRASH_AT):
    """Serve journaled+stored and die hard after ``halt`` events."""
    journal_path = tmp_path / "fleet.journal"
    store_path = tmp_path / "results.jsonl"
    runtime = FleetRuntime(
        build_pool(CFG),
        FleetPolicy(),
        journal=JobJournal(journal_path, fsync=False),
        store=ResultStore(store_path, fsync=False),
    )
    with pytest.raises(FleetKilledError) as exc:
        runtime.run(generate_jobs(CFG), generate_kills(CFG),
                    halt_after_events=halt)
    assert exc.value.events_processed == halt
    return journal_path, store_path


class TestRecoverResume:
    def test_resumed_digest_equals_uninterrupted(self, tmp_path, reference):
        journal_path, store_path = _crashed_run(tmp_path)
        recovered = FleetRuntime.recover(journal_path, store_path)
        report = recovered.resume(fsync=False)
        assert report.digest() == reference[1].digest()
        assert report.passed

    def test_exactly_once_results(self, tmp_path, reference):
        journal_path, store_path = _crashed_run(tmp_path)
        recovered = FleetRuntime.recover(journal_path, store_path)
        recovered.resume(fsync=False)
        stats = recovered.runtime.recovery_stats
        # Everything durable at death was suppressed on replay, never
        # re-emitted; replayed copies agreed with the durable ones.
        assert stats["results_restored"] > 0
        assert stats["duplicates_suppressed"] == stats["results_restored"]
        assert stats["replay_divergences"] == 0
        with ResultStore(store_path, fsync=False) as store:
            assert store.duplicates_suppressed == 0
            assert sorted(store.job_ids()) == sorted(
                j.job_id for j in generate_jobs(CFG)
            )

    def test_projection_names_outstanding_work(self, tmp_path):
        journal_path, store_path = _crashed_run(tmp_path)
        recovered = FleetRuntime.recover(journal_path, store_path)
        view = recovered.projection
        all_jobs = {j.job_id for j in generate_jobs(CFG)}
        assert set(view.outstanding) <= all_jobs
        assert view.run_end is None
        # recover() itself must not replay anything.
        assert recovered.runtime is None

    def test_second_crash_then_final_recovery(self, tmp_path, reference):
        journal_path, store_path = _crashed_run(tmp_path)
        recovered = FleetRuntime.recover(journal_path, store_path)
        # Crash points are absolute event counts: the resumed replay
        # starts from event 0, so the second kill lands deeper in.
        with pytest.raises(FleetKilledError):
            recovered.resume(halt_after_events=CRASH_AT + 3, fsync=False)
        final = FleetRuntime.recover(journal_path, store_path)
        report = final.resume(fsync=False)
        assert report.digest() == reference[1].digest()
        assert final.projection.recoveries == 1  # marker of resume #1

    def test_resume_journals_into_the_same_file(self, tmp_path):
        journal_path, store_path = _crashed_run(tmp_path)
        seq_at_death = read_journal(journal_path).records[-1].seq
        recovered = FleetRuntime.recover(journal_path, store_path)
        recovered.resume(fsync=False)
        scan = read_journal(journal_path)
        assert scan.clean
        assert scan.records[-1].seq > seq_at_death
        types = [r.type for r in scan.records]
        assert types.count("run-begin") == 2  # original + replay
        assert types.count("recover") == 1
        assert types[-1] == "run-end"
        view = project_journal(scan.records)
        assert view.run_end is not None

    def test_recovery_survives_torn_tail(self, tmp_path, reference):
        journal_path, store_path = _crashed_run(tmp_path)
        apply_storage_fault(journal_path, StorageFault(kind="torn-write"))
        recovered = FleetRuntime.recover(
            journal_path, store_path, quarantine_dir=tmp_path / "q"
        )
        assert recovered.repair.truncated_bytes > 0
        report = recovered.resume(fsync=False)
        assert report.digest() == reference[1].digest()

    def test_recovery_survives_corrupt_store(self, tmp_path, reference):
        journal_path, store_path = _crashed_run(tmp_path)
        apply_storage_fault(
            store_path, StorageFault(kind="bit-flip", target="store")
        )
        recovered = FleetRuntime.recover(journal_path, store_path)
        report = recovered.resume(fsync=False)
        # The flipped result was dropped at load and recomputed.
        assert report.digest() == reference[1].digest()


class TestRecoverErrors:
    def test_missing_journal_is_typed(self, tmp_path):
        with pytest.raises(UserInputError, match="not found"):
            FleetRuntime.recover(tmp_path / "absent.journal")

    def test_corrupt_run_begin_is_typed(self, tmp_path):
        journal_path, store_path = _crashed_run(tmp_path)
        # Flip a bit in the run-begin record itself: the one piece of
        # state replay cannot live without.
        apply_storage_fault(
            journal_path, StorageFault(kind="bit-flip", record=0)
        )
        with pytest.raises(UserInputError, match="run-begin"):
            FleetRuntime.recover(journal_path, store_path)

    def test_halt_after_events_must_be_positive(self):
        runtime = FleetRuntime(build_pool(CFG), FleetPolicy())
        with pytest.raises(UserInputError, match="halt_after_events"):
            runtime.run(generate_jobs(CFG), halt_after_events=0)


class TestResultStore:
    def _result(self, runtime_reference, index=0):
        return runtime_reference[1].jobs[index]

    def test_round_trip(self, tmp_path, reference):
        path = tmp_path / "s.jsonl"
        result = self._result(reference)
        with ResultStore(path, fsync=False) as store:
            assert store.put(result)
        with ResultStore(path, fsync=False) as store:
            assert len(store) == 1
            loaded = store.get(result.job_id)
            assert loaded.to_dict() == result.to_dict()

    def test_first_write_wins(self, tmp_path, reference):
        path = tmp_path / "s.jsonl"
        first = self._result(reference, 0)
        shadow = dataclasses.replace(first, replica_id="imposter")
        with ResultStore(path, fsync=False) as store:
            assert store.put(first)
            assert not store.put(shadow)
            assert store.duplicates_suppressed == 1
            assert store.get(first.job_id).replica_id == first.replica_id

    def test_compact_drops_corrupt_lines(self, tmp_path, reference):
        path = tmp_path / "s.jsonl"
        with ResultStore(path, fsync=False) as store:
            store.put(self._result(reference, 0))
            store.put(self._result(reference, 1))
        apply_storage_fault(path, StorageFault(kind="torn-write",
                                               target="store"))
        with ResultStore(path, fsync=False) as store:
            assert store.discarded_at_load == 1
            assert len(store) == 1
            store.compact()
        with ResultStore(path, fsync=False) as store:
            assert store.discarded_at_load == 0
            assert len(store) == 1
