"""Unit tests for RunReport / IterationReport accounting."""

import pytest

from repro.core.system import IterationReport, RunReport


class TestIterationReport:
    def _report(self, little=(100.0,), big=(80.0,), apply_c=50.0, w=10.0):
        return IterationReport(
            little_cycles=list(little),
            big_cycles=list(big),
            apply_cycles=apply_c,
            writer_cycles=w,
        )

    def test_cluster_cycles_is_slowest_pipeline(self):
        rep = self._report(little=(100.0, 120.0), big=(80.0,))
        assert rep.cluster_cycles == 120.0

    def test_apply_overlaps_clusters(self):
        rep = self._report(little=(100.0,), apply_c=150.0, w=10.0)
        assert rep.total_cycles == 160.0

    def test_clusters_dominate_when_apply_small(self):
        rep = self._report(little=(100.0,), apply_c=20.0, w=10.0)
        assert rep.total_cycles == 110.0

    def test_empty_clusters(self):
        rep = IterationReport([], [], apply_cycles=5.0, writer_cycles=1.0)
        assert rep.cluster_cycles == 0.0
        assert rep.total_cycles == 6.0


class TestRunReport:
    def _run(self, cycles=1e6, freq=250.0, edges=100_000, iters=10):
        run = RunReport(
            app_name="PR",
            graph_name="g",
            accel_label="7L7B",
            frequency_mhz=freq,
            edges_per_iteration=edges,
        )
        run.total_cycles = cycles
        run.iterations = iters
        return run

    def test_seconds_from_frequency(self):
        run = self._run(cycles=250e6, freq=250.0)
        assert run.total_seconds == pytest.approx(1.0)

    def test_processed_edges(self):
        run = self._run(edges=100, iters=7)
        assert run.processed_edges == 700

    def test_mteps(self):
        run = self._run(cycles=250e6, freq=250.0, edges=1_000_000, iters=5)
        # 5M edges in 1 s -> 5 MTEPS.
        assert run.mteps == pytest.approx(5.0)

    def test_gteps(self):
        run = self._run(cycles=250e6, freq=250.0, edges=1_000_000, iters=5)
        assert run.gteps == pytest.approx(0.005)

    def test_zero_time_guard(self):
        run = self._run(cycles=0.0)
        assert run.mteps == 0.0
