"""Tests for the content-addressed simulation cache (repro.perf).

The load-bearing property: caching is *invisible* — a cached run
produces bit-identical reports to an uncached one, and any run whose
timing depends on live fault-injector state bypasses the cache
entirely.  Plus the mechanics: LRU bound, counters, crash-safe
persistence, and the acceptance floor of >50% hit rate on a
10-iteration PageRank.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.timing import PartitionTiming
from repro.errors import UserInputError
from repro.faults import FaultPlan, LatencySpikeFault
from repro.faults.resilience import CheckpointStore, ResiliencePolicy
from repro.graph.generators import rmat_graph
from repro.compiled import configure_compiled
from repro.perf import configure_cache, get_cache
from repro.perf.simcache import (
    DEFAULT_CACHE_ENTRIES,
    SimulationCache,
    config_digest_prefix,
    timing_key,
)

from tests.helpers import make_framework
from tests.strategies import (
    STRATEGY_CONFIG,
    channel_param_perturbations,
    compiled_specs,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    """Every test starts from an empty, enabled, default-sized cache."""
    configure_cache(enabled=True, max_entries=DEFAULT_CACHE_ENTRIES)
    get_cache().clear()
    yield
    configure_cache(enabled=True, max_entries=DEFAULT_CACHE_ENTRIES)
    get_cache().clear()
    configure_compiled(True)


def _timing(n: int = 1) -> PartitionTiming:
    return PartitionTiming(
        compute_cycles=float(n), store_cycles=2.0, switch_cycles=3.0,
        num_edges=n, num_sets=1,
    )


def _pagerank_report(seed: int, iterations: int = 5, **run_kwargs):
    graph = rmat_graph(11, 8, seed=seed)
    framework = make_framework()
    pre = framework.preprocess(graph)
    return framework.run_pagerank(
        pre, max_iterations=iterations, **run_kwargs
    )


class TestKeying:
    def test_key_distinguishes_dtype_and_shape(self):
        a64 = np.arange(8, dtype=np.int64)
        a32 = np.arange(8, dtype=np.int32)
        k1 = timing_key(b"p", 8, (a64,))
        k2 = timing_key(b"p", 8, (a32,))
        k3 = timing_key(b"p", 8, (a64.reshape(2, 4),))
        assert len({k1, k2, k3}) == 3

    def test_key_covers_prefix_edge_bytes_and_extra(self):
        arr = np.arange(8, dtype=np.int64)
        base = timing_key(b"p", 8, (arr,))
        assert timing_key(b"q", 8, (arr,)) != base
        assert timing_key(b"p", 12, (arr,)) != base
        assert timing_key(b"p", 8, (arr,), extra=(4,)) != base

    def test_key_stable_for_equal_content(self):
        arr = np.arange(8, dtype=np.int64)
        assert timing_key(b"p", 8, (arr,)) == timing_key(b"p", 8, (arr.copy(),))

    @given(st.lists(st.integers(0, 1 << 20), max_size=40),
           st.lists(st.integers(0, 1 << 20), max_size=40),
           st.sampled_from([8, 12]))
    @settings(max_examples=60, deadline=None)
    def test_key_is_injective_on_content(self, xs, ys, edge_bytes):
        # Equal content -> equal key; different content -> different key
        # (injectivity up to SHA-256, which is what "content-addressed"
        # promises the equivalence tests).
        a = np.asarray(xs, dtype=np.int64)
        b = np.asarray(ys, dtype=np.int64)
        ka = timing_key(b"p", edge_bytes, (a,))
        kb = timing_key(b"p", edge_bytes, (b,))
        if xs == ys:
            assert ka == kb
        else:
            assert ka != kb

    @given(spec_a=compiled_specs(), spec_b=compiled_specs())
    @settings(max_examples=60, deadline=None)
    def test_compiled_spec_digest_is_injective(self, spec_a, spec_b):
        # The compiled core keys its published cache entries off the
        # same (config, channel-params) material the spec digests; two
        # distinct device/combo/channel-param bindings must never share
        # a digest, or a compiled evaluation could serve another spec's
        # timings.
        if spec_a == spec_b:
            assert spec_a.digest() == spec_b.digest()
        else:
            assert spec_a.digest() != spec_b.digest()

    @given(
        params_a=channel_param_perturbations(),
        params_b=channel_param_perturbations(),
    )
    @settings(max_examples=60, deadline=None)
    def test_prefix_covers_channel_params(self, params_a, params_b):
        # Audit: every HbmTimingParams field reaches the key prefix, so
        # the compiled path's per-params cache publication can never
        # collide across channel variants of the same plan.
        config = STRATEGY_CONFIG
        pa = config_digest_prefix("little", config, params_a)
        pb = config_digest_prefix("little", config, params_b)
        assert (pa == pb) == (params_a == params_b)
        assert config_digest_prefix("big", config, params_a) != pa

    def test_contains_probe_does_not_count(self):
        cache = get_cache()
        cache.put("k", _timing())
        stats_before = cache.stats()
        assert cache.contains("k")
        assert not cache.contains("missing")
        stats_after = cache.stats()
        assert stats_after["hits"] == stats_before["hits"]
        assert stats_after["misses"] == stats_before["misses"]


class TestLruBound:
    def test_eviction_keeps_bound_and_counts(self):
        cache = SimulationCache(max_entries=3)
        for i in range(5):
            cache.put(f"k{i}", _timing(i))
        assert len(cache) == 3
        assert cache.evictions == 2
        assert cache.get("k0") is None  # oldest evicted
        assert cache.get("k4") is not None

    def test_get_refreshes_recency(self):
        cache = SimulationCache(max_entries=2)
        cache.put("a", _timing())
        cache.put("b", _timing())
        cache.get("a")  # now b is LRU
        cache.put("c", _timing())
        assert cache.get("b") is None
        assert cache.get("a") is not None

    def test_shrinking_global_bound_evicts(self):
        cache = get_cache()
        for i in range(10):
            cache.put(f"k{i}", _timing(i))
        configure_cache(max_entries=4)
        assert len(cache) == 4

    def test_invalid_bound_rejected(self):
        with pytest.raises(UserInputError):
            SimulationCache(max_entries=0)
        with pytest.raises(UserInputError):
            configure_cache(max_entries=0)

    def test_disabled_cache_is_inert(self):
        cache = SimulationCache(enabled=False)
        cache.put("a", _timing())
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.merge({"b": _timing()}) == 0


class TestMergeAndStats:
    def test_merge_adopts_only_new_keys(self):
        cache = SimulationCache()
        mine = _timing(1)
        cache.put("a", mine)
        adopted = cache.merge({"a": _timing(99), "b": _timing(2)})
        assert adopted == 1
        assert cache._entries["a"] is mine  # existing key wins

    def test_stats_snapshot(self):
        cache = SimulationCache(max_entries=8)
        cache.put("a", _timing())
        cache.get("a")
        cache.get("zzz")
        cache.note_bypass()
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["bypasses"] == 1
        assert stats["entries"] == 1 and stats["max_entries"] == 8

    def test_hit_rate_zero_before_lookups(self):
        assert SimulationCache().hit_rate == 0.0


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        cache = SimulationCache()
        cache.put("a", _timing(7))
        path = cache.save(tmp_path / "sim.cache.json")
        other = SimulationCache()
        assert other.load(path) == 1
        assert other._entries["a"] == _timing(7)

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"schema": "something-else", "entries": {}}')
        with pytest.raises(UserInputError):
            SimulationCache().load(path)
        assert SimulationCache().load(path, strict=False) == 0

    def test_lenient_load_of_missing_file(self, tmp_path):
        assert SimulationCache().load(tmp_path / "absent", strict=False) == 0
        with pytest.raises(OSError):
            SimulationCache().load(tmp_path / "absent")

    def test_no_staging_file_left_behind(self, tmp_path):
        cache = SimulationCache()
        cache.put("a", _timing())
        cache.save(tmp_path / "sim.cache.json")
        leftovers = [p for p in tmp_path.iterdir() if ".tmp-" in p.name]
        assert leftovers == []


class TestConcurrentStagingNames:
    """The satellite bugfix: temp names must be per-call unique, so two
    workers (or one process saving twice concurrently) never collide on
    one staging file and clobber each other's bytes mid-write."""

    def _staged_names(self, save, final, monkeypatch, times=2):
        import repro.faults.resilience as resilience_mod

        names = []
        real_replace = resilience_mod.os.replace

        def spy(src, dst):
            names.append(str(src))
            return real_replace(src, dst)

        monkeypatch.setattr("os.replace", spy)
        for _ in range(times):
            save(final)
        return names

    def test_checkpoint_store_unique_tmp_names(self, tmp_path, monkeypatch):
        import os

        store = CheckpointStore()
        store.save(0, np.zeros(4, dtype=np.int64), 0.0)
        names = self._staged_names(
            store.to_file, tmp_path / "cp.npz", monkeypatch
        )
        assert len(set(names)) == 2
        assert all(f".tmp-{os.getpid()}-" in n for n in names)

    def test_sim_cache_unique_tmp_names(self, tmp_path, monkeypatch):
        import os

        cache = SimulationCache()
        cache.put("a", _timing())
        names = self._staged_names(
            cache.save, tmp_path / "sim.cache.json", monkeypatch
        )
        assert len(set(names)) == 2
        assert all(f".tmp-{os.getpid()}-" in n for n in names)


class TestCacheTransparency:
    """Cached and uncached execution must be indistinguishable."""

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_cached_run_identical_to_uncached(self, seed):
        configure_cache(enabled=False)
        cold = _pagerank_report(seed)
        configure_cache(enabled=True)
        get_cache().clear()
        warm1 = _pagerank_report(seed)  # populates the cache
        warm2 = _pagerank_report(seed)  # served largely from it
        assert get_cache().hits > 0
        for run in (warm1, warm2):
            assert run.iterations == cold.iterations
            assert run.total_cycles == cold.total_cycles
            assert run.converged == cold.converged
            np.testing.assert_array_equal(run.props, cold.props)

    def test_hit_rate_above_half_on_ten_iteration_pagerank(self):
        # The >50% floor is an interpreted-path property: every
        # iteration's per-task lookups hit the entries the first one
        # published.  A fully compiled run performs no per-task lookups
        # at all (the point of the compiled functional pass), so its
        # hit rate is vacuous — pin the floor on the interpreted walk.
        configure_compiled(False)
        _pagerank_report(3, iterations=10)
        cache = get_cache()
        assert cache.hits + cache.misses > 0
        assert cache.hit_rate > 0.5
        assert len(cache) > 0

    def test_compiled_run_seeds_entries_without_per_task_lookups(self):
        # The compiled counterpart of the floor above: a compiled run
        # publishes the per-task entries (so later interpreted callers
        # hit) while issuing no per-task gets of its own.
        _pagerank_report(3, iterations=10)
        cache = get_cache()
        assert len(cache) > 0
        assert cache.hits == 0

    def test_fault_injected_run_bypasses_cache(self):
        # One long latency spike keeps a timing fault active, so every
        # timing call must go around the cache (neither read nor write).
        plan = FaultPlan(
            seed=5,
            latency_spikes=(LatencySpikeFault(
                channel=0, onset_cycle=0.0, duration_cycles=1e12,
                multiplier=4.0,
            ),),
        )
        _pagerank_report(
            3, fault_plan=plan, resilience=ResiliencePolicy()
        )
        cache = get_cache()
        assert cache.bypasses > 0
        # The handful of cached calls are the resilience layer's *clean*
        # makespan predictions (no fault site attached); every call on
        # the faulted datapath went around the cache.
        assert cache.bypasses > cache.hits + cache.misses

    def test_clean_entries_unpolluted_by_faulted_run(self):
        clean = _pagerank_report(3)
        cache = get_cache()
        entries_before = dict(cache.entries())
        plan = FaultPlan(
            seed=5,
            latency_spikes=(LatencySpikeFault(
                channel=0, onset_cycle=0.0, duration_cycles=1e12,
                multiplier=4.0,
            ),),
        )
        _pagerank_report(3, fault_plan=plan, resilience=ResiliencePolicy())
        assert cache.entries() == entries_before
        rerun = _pagerank_report(3)
        assert rerun.total_cycles == clean.total_cycles
        np.testing.assert_array_equal(rerun.props, clean.props)
