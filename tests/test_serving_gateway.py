"""ServingGateway request path and the stdlib HTTP transport.

Every robustness property is asserted through the gateway's async
methods directly — the in-process transport — because that is where
the behaviour lives; one end-to-end class then drives the same flows
over a real socket to prove the HTTP adapter is honest about framing
and status codes.  No external HTTP client, no third-party framework:
raw asyncio streams on a port-0 listener.

All tests are plain sync functions running their coroutine with
``asyncio.run`` (the container has no async pytest plugin).
"""

import asyncio
import json

import pytest

from repro.chaos.fleet_soak import FleetSoakConfig, generate_jobs
from repro.errors import (
    ServingDrainingError,
    TenantAuthError,
    TenantQuotaExceededError,
    UserInputError,
)
from repro.serving.config import ServingConfig, TenantSpec
from repro.serving.gateway import ServingGateway
from repro.serving.http import HttpServer
from repro.serving.session import KernelSession

SOAK = FleetSoakConfig(jobs=4, seed=7, replicas=("U280", "U50"))
TENANTS = (
    TenantSpec(name="acme", api_key="acme-key"),
    TenantSpec(name="tiny", api_key="tiny-key", max_pending=1),
)


def _config(**overrides):
    kwargs = dict(tenants=TENANTS, fsync=False)
    kwargs.update(overrides)
    return ServingConfig(**kwargs)


@pytest.fixture(scope="module")
def payloads():
    return [job.to_dict() for job in generate_jobs(SOAK)]


@pytest.fixture(scope="module")
def reference_digest(payloads):
    session = KernelSession(_config().session_spec())
    session.replay(payloads)
    return session.digest()


class TestGatewayRequestPath:
    def test_submit_ack_stream_and_status(self, payloads):
        async def run():
            gateway = ServingGateway(_config())
            try:
                ack = await gateway.submit("acme-key", payloads[0])
                assert ack["status"] == "accepted"
                assert ack["seq"] == 1  # sqlite sequence starts at 1
                assert ack["tenant"] == "acme"
                assert ack["duplicate"] is False
                updates = [
                    u async for u in gateway.stream(payloads[0]["job_id"])
                ]
                assert updates[-1]["status"] != "pending"
                status = gateway.status(payloads[0]["job_id"])
                assert status["status"] == updates[-1]["status"]
                assert "result" in status
            finally:
                gateway.close()
        asyncio.run(run())

    def test_auth_failures_are_typed(self, payloads):
        async def run():
            gateway = ServingGateway(_config())
            try:
                with pytest.raises(TenantAuthError):
                    await gateway.submit(None, payloads[0])
                with pytest.raises(TenantAuthError):
                    await gateway.submit("wrong-key", payloads[0])
            finally:
                gateway.close()
        asyncio.run(run())

    def test_unknown_job_is_typed(self):
        gateway = ServingGateway(_config())
        try:
            with pytest.raises(UserInputError):
                gateway.status("never-submitted")
        finally:
            gateway.close()

    def test_bad_payload_is_typed(self):
        async def run():
            gateway = ServingGateway(_config())
            try:
                with pytest.raises(UserInputError):
                    await gateway.submit("acme-key", {"not": "a job"})
            finally:
                gateway.close()
        asyncio.run(run())

    def test_draining_gateway_turns_work_away(self, payloads):
        async def run():
            gateway = ServingGateway(_config())
            try:
                gateway.draining = True
                with pytest.raises(ServingDrainingError):
                    await gateway.submit("acme-key", payloads[0])
            finally:
                gateway.close()
        asyncio.run(run())

    def test_resubmission_is_idempotent(self, payloads):
        async def run():
            gateway = ServingGateway(_config())
            try:
                first = await gateway.submit("acme-key", payloads[0])
                again = await gateway.submit("acme-key", payloads[0])
                assert again["duplicate"] is True
                assert again["seq"] == first["seq"]
                await gateway.drain()
                # Terminal now; the job ran exactly once end to end.
                status = gateway.status(payloads[0]["job_id"])
                assert "result" in status
                assert gateway.store.job_count() == 1  # never ran twice
            finally:
                gateway.close()
        asyncio.run(run())

    def test_tenant_pending_cap_sheds(self, payloads):
        async def run():
            gateway = ServingGateway(_config())
            try:
                # Pin one unfinished job on the tenant by hand (racing
                # the worker to keep a real one pending is flaky; the
                # cap only counts entries, so a stub is faithful).
                stub = type("P", (), {"tenant": "tiny"})()
                gateway._pending["stuck-job"] = stub
                with pytest.raises(TenantQuotaExceededError) as exc:
                    await gateway.submit("tiny-key", payloads[0])
                assert exc.value.tenant == "tiny"
                assert exc.value.reason == "tenant-pending"
                assert gateway.admission.stats.shed_tenant_quota == 1
                # "acme" is uncapped by "tiny"'s backlog.
                ack = await gateway.submit("acme-key", payloads[1])
                assert ack["status"] == "accepted"
            finally:
                gateway.close()
        asyncio.run(run())

    def test_drain_digest_matches_the_pure_kernel(
        self, payloads, reference_digest
    ):
        async def run():
            gateway = ServingGateway(_config())
            try:
                for payload in payloads:
                    await gateway.submit("acme-key", payload)
                summary = await gateway.drain()
                assert summary["drained"] is True
                assert summary["outstanding"] == []
                assert summary["served"] == len(payloads)
                # The facade adds nothing to the outcome: serving the
                # stream through asyncio, a thread-pool worker and the
                # store lands on the same digest as a bare replay.
                assert summary["digest"] == reference_digest
            finally:
                gateway.close()
        asyncio.run(run())

    def test_health_and_report_surface_counters(self, payloads):
        async def run():
            gateway = ServingGateway(_config())
            try:
                assert gateway.report() == {"digest": "", "jobs": 0}
                await gateway.submit("acme-key", payloads[0])
                await gateway.drain()
                health = gateway.health()
                assert health["status"] == "draining"
                assert health["admission"]["admitted"] == 1
                assert health["store"]["results"] == 1
                report = gateway.report()
                assert report["jobs"] == 1
                assert len(report["digest"]) == 64
            finally:
                gateway.close()
        asyncio.run(run())


async def _http(port, method, path, body=None, key=None):
    """One raw HTTP/1.1 exchange; returns (status, parsed_json_lines)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = json.dumps(body).encode() if body is not None else b""
    head = [f"{method} {path} HTTP/1.1", "Host: t"]
    if key:
        head.append(f"Authorization: Bearer {key}")
    if payload:
        head.append(f"Content-Length: {len(payload)}")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    header, _, rest = raw.partition(b"\r\n\r\n")
    status = int(header.split(b" ", 2)[1])
    if b"chunked" in header:
        docs = []
        while rest:
            size_line, _, rest = rest.partition(b"\r\n")
            size = int(size_line, 16)
            if size == 0:
                break
            docs.append(json.loads(rest[:size]))
            rest = rest[size + 2:]
        return status, docs
    return status, [json.loads(rest)] if rest.strip() else []


class TestHttpTransport:
    def test_end_to_end_over_a_real_socket(self, payloads):
        async def run():
            gateway = ServingGateway(_config())
            server = HttpServer(gateway, port=0)
            await server.start()
            try:
                port = server.port
                assert port != 0  # port 0 resolved to the bound one

                status, body = await _http(
                    port, "POST", "/v1/jobs",
                    body=payloads[0], key="acme-key",
                )
                assert status == 202
                assert body[0]["status"] == "accepted"

                status, updates = await _http(
                    port, "GET",
                    f"/v1/jobs/{payloads[0]['job_id']}/stream",
                )
                assert status == 200
                assert updates[-1]["status"] != "pending"

                status, body = await _http(port, "GET", "/v1/health")
                assert status == 200
                assert body[0]["status"] == "serving"

                status, body = await _http(
                    port, "POST", "/v1/jobs",
                    body=payloads[1], key="wrong-key",
                )
                assert status == 401
                assert body[0]["error"] == "TenantAuthError"

                status, body = await _http(
                    port, "GET", "/v1/jobs/never-submitted"
                )
                assert status == 404

                status, body = await _http(port, "GET", "/v1/nope")
                assert status == 405

                status, body = await _http(port, "POST", "/v1/drain")
                assert status == 200
                assert body[0]["drained"] is True

                status, body = await _http(
                    port, "POST", "/v1/jobs",
                    body=payloads[1], key="acme-key",
                )
                assert status == 503  # draining: typed turn-away
            finally:
                await server.stop()
                gateway.close()
        asyncio.run(run())

    def test_bad_json_is_a_400(self):
        async def run():
            gateway = ServingGateway(_config())
            server = HttpServer(gateway, port=0)
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                junk = b"{not json"
                writer.write(
                    b"POST /v1/jobs HTTP/1.1\r\nHost: t\r\n"
                    b"Authorization: Bearer acme-key\r\n"
                    b"Content-Length: %d\r\n\r\n%s" % (len(junk), junk)
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                assert b" 400 " in raw.split(b"\r\n", 1)[0]
            finally:
                await server.stop()
                gateway.close()
        asyncio.run(run())
