"""Tests for the SpMV and radii-estimation extension apps."""

import numpy as np
import pytest

from repro.apps.radii import RadiiEstimation, radii_reference
from repro.apps.spmv import SpMV, spmv_reference
from repro.graph.generators import erdos_renyi_graph, rmat_graph


def _gas_run(app, max_iterations=200):
    graph = app.graph
    props = app.init_props()
    for i in range(max_iterations):
        acc = np.full(
            graph.num_vertices, app.gather_identity, dtype=app.prop_dtype
        )
        weights = graph.weights if app.uses_weights else None
        updates = app.scatter(props[graph.src], weights)
        app.gather_at(acc, graph.dst, updates)
        new_props = app.apply(props, acc)
        if app.has_converged(props, new_props, i + 1):
            return new_props
        props = new_props
    return props


class TestSpmv:
    def test_matches_dense_reference_unweighted(self):
        g = erdos_renyi_graph(300, 3000, seed=0)
        rng = np.random.default_rng(1)
        x = rng.random(300)
        app = SpMV(g, x)
        y = app.finalize(_gas_run(app))
        np.testing.assert_allclose(y, spmv_reference(g, x), atol=1e-5)

    def test_single_sweep(self):
        g = erdos_renyi_graph(100, 500, seed=0)
        app = SpMV(g, np.ones(100))
        assert app.has_converged(None, None, 1)

    def test_wrong_vector_shape_raises(self):
        g = erdos_renyi_graph(100, 500, seed=0)
        with pytest.raises(ValueError):
            SpMV(g, np.ones(5))

    def test_zero_vector_gives_zero(self):
        g = erdos_renyi_graph(100, 500, seed=0)
        app = SpMV(g, np.zeros(100))
        y = app.finalize(_gas_run(app))
        assert np.all(y == 0)

    def test_on_simulated_system(self, rmat_partitions, dbg_rmat, perf_model):
        from repro.arch.platform import get_platform
        from repro.core.system import SystemSimulator
        from repro.sched.scheduler import build_schedule

        plan = build_schedule(rmat_partitions, perf_model, 4)
        sim = SystemSimulator(plan, get_platform("U280"))
        rng = np.random.default_rng(2)
        x = rng.random(dbg_rmat.graph.num_vertices)
        run = sim.run(SpMV(dbg_rmat.graph, x), max_iterations=1)
        np.testing.assert_allclose(
            run.result, spmv_reference(dbg_rmat.graph, x), atol=1e-4
        )


class TestRadii:
    def test_bitmask_init(self):
        g = erdos_renyi_graph(100, 1000, seed=0)
        app = RadiiEstimation(g, num_sources=8, seed=1)
        props = app.init_props()
        assert np.count_nonzero(props) == 8

    def test_invalid_source_count(self):
        g = erdos_renyi_graph(10, 20, seed=0)
        with pytest.raises(ValueError):
            RadiiEstimation(g, num_sources=65)

    def test_diameter_matches_reference(self):
        g = rmat_graph(9, 8, seed=5)
        app = RadiiEstimation(g, num_sources=16, seed=2)
        result = app.finalize(_gas_run(app, max_iterations=100))
        reference = radii_reference(g, app.sources)
        assert result["diameter_estimate"] == reference

    def test_radius_not_exceeding_diameter(self):
        g = rmat_graph(9, 8, seed=7)
        app = RadiiEstimation(g, num_sources=16, seed=3)
        result = app.finalize(_gas_run(app, max_iterations=100))
        assert result["radius_estimate"] <= result["diameter_estimate"]

    def test_gather_is_bitwise_or(self):
        g = erdos_renyi_graph(10, 20, seed=0)
        app = RadiiEstimation(g, num_sources=4)
        out = app.gather(np.array([0b0011]), np.array([0b0101]))
        assert out[0] == 0b0111

    def test_reached_count_positive(self):
        g = rmat_graph(9, 8, seed=1)
        app = RadiiEstimation(g, num_sources=8, seed=1)
        result = app.finalize(_gas_run(app, max_iterations=100))
        assert result["reached"] >= 8
