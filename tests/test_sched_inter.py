"""Tests for inter-cluster scheduling (classification + combo choice)."""

import pytest

from repro.sched.inter import (
    choose_pipeline_combination,
    classify_partitions,
)


class TestClassification:
    def test_partitions_all_classified(self, rmat_partitions, perf_model):
        parts = rmat_partitions.nonempty()
        dense, sparse, tl, tb = classify_partitions(parts, perf_model)
        assert sorted(dense + sparse) == list(range(len(parts)))
        assert len(tl) == len(tb) == len(parts)

    def test_head_partitions_dense(self, rmat_partitions, perf_model):
        dense, _, _, _ = classify_partitions(
            rmat_partitions.nonempty(), perf_model
        )
        assert 0 in dense

    def test_tail_partitions_sparse(self, rmat_partitions, perf_model):
        parts = rmat_partitions.nonempty()
        _, sparse, _, _ = classify_partitions(parts, perf_model)
        assert len(parts) - 1 in sparse

    def test_sparse_partitions_prefer_big(self, rmat_partitions, perf_model):
        # Every surviving sparse partition beat Little in the initial
        # per-partition comparison (refinement only evicts to dense).
        parts = rmat_partitions.nonempty()
        _dense, sparse, tl, tb = classify_partitions(parts, perf_model)
        for i in sparse:
            assert tb[i] < tl[i]

    def test_refinement_keeps_groups_profitable(
        self, rmat_partitions, perf_model
    ):
        # After refinement, each prospective Big group is no slower than
        # its Little alternative.
        parts = rmat_partitions.nonempty()
        _dense, sparse, tl, _tb = classify_partitions(parts, perf_model)
        n = perf_model.config.n_gpe
        for lo in range(0, len(sparse), n):
            group = sparse[lo : lo + n]
            big = perf_model.estimate_big_group(
                [parts[i].src for i in group]
            )
            little = sum(tl[i] for i in group)
            assert big <= little


class TestComboChoice:
    def test_balanced_loads_split_evenly(self):
        assert choose_pipeline_combination(100.0, 100.0, 14) == (7, 7)

    def test_skewed_load_gets_more_pipelines(self):
        m, n = choose_pipeline_combination(300.0, 100.0, 12)
        assert m > n

    def test_no_dense_work(self):
        assert choose_pipeline_combination(0.0, 50.0, 14) == (0, 14)

    def test_no_sparse_work(self):
        assert choose_pipeline_combination(50.0, 0.0, 14) == (14, 0)

    def test_no_work_at_all(self):
        m, n = choose_pipeline_combination(0.0, 0.0, 14)
        assert m + n == 14

    def test_both_clusters_nonempty_get_pipeline(self):
        m, n = choose_pipeline_combination(1.0, 1000.0, 8)
        assert m >= 1 and n >= 1

    def test_single_pipeline_goes_to_heavier_cluster(self):
        assert choose_pipeline_combination(10.0, 1.0, 1) == (1, 0)
        assert choose_pipeline_combination(1.0, 10.0, 1) == (0, 1)

    def test_minimises_gap(self):
        # dense=90, sparse=30, 4 pipelines: (3,1) gives |30-30|=0.
        assert choose_pipeline_combination(90.0, 30.0, 4) == (3, 1)

    def test_invalid_pipeline_count(self):
        with pytest.raises(ValueError):
            choose_pipeline_combination(1.0, 1.0, 0)
