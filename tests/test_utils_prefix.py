"""Tests for prefix-sum scheduling math."""

import numpy as np
import pytest

from repro.utils.prefix import balanced_chunk_bounds, running_release_times


class TestBalancedChunkBounds:
    def test_uniform_weights_split_evenly(self):
        bounds = balanced_chunk_bounds(np.ones(12), 3)
        np.testing.assert_array_equal(bounds, [0, 4, 8, 12])

    def test_single_chunk(self):
        bounds = balanced_chunk_bounds(np.ones(5), 1)
        np.testing.assert_array_equal(bounds, [0, 5])

    def test_bounds_monotonic(self):
        rng = np.random.default_rng(0)
        w = rng.random(100)
        bounds = balanced_chunk_bounds(w, 7)
        assert np.all(np.diff(bounds) >= 0)
        assert bounds[0] == 0 and bounds[-1] == 100

    def test_skewed_weight_gets_own_chunk(self):
        w = np.array([1, 1, 100, 1, 1], dtype=float)
        bounds = balanced_chunk_bounds(w, 2)
        # The heavy element must not share a chunk with everything else
        # on one side only; the cut lands adjacent to it.
        assert 2 <= bounds[1] <= 3

    def test_balance_quality(self):
        rng = np.random.default_rng(3)
        w = rng.random(10_000)
        bounds = balanced_chunk_bounds(w, 8)
        sums = [w[bounds[i]:bounds[i + 1]].sum() for i in range(8)]
        assert max(sums) / min(sums) < 1.05

    def test_empty_weights(self):
        bounds = balanced_chunk_bounds(np.zeros(0), 4)
        np.testing.assert_array_equal(bounds, [0, 0, 0, 0, 0])

    def test_zero_chunks_raises(self):
        with pytest.raises(ValueError):
            balanced_chunk_bounds(np.ones(3), 0)

    def test_more_chunks_than_items(self):
        bounds = balanced_chunk_bounds(np.ones(2), 5)
        assert bounds[0] == 0 and bounds[-1] == 2
        assert np.all(np.diff(bounds) >= 0)


class TestRunningReleaseTimes:
    def _reference(self, ready, cost):
        t = 0.0
        out = []
        for r, c in zip(ready, cost):
            t = max(t + c, r)
            out.append(t)
        return np.array(out)

    def test_matches_loop_reference(self):
        rng = np.random.default_rng(2)
        ready = np.cumsum(rng.random(200))
        cost = rng.random(200)
        out = running_release_times(ready, cost)
        np.testing.assert_allclose(out, self._reference(ready, cost))

    def test_service_bound_when_always_ready(self):
        cost = np.full(10, 2.0)
        ready = np.zeros(10)
        out = running_release_times(ready, cost)
        np.testing.assert_allclose(out, np.arange(1, 11) * 2.0)

    def test_ready_bound_when_service_free(self):
        ready = np.array([5.0, 6.0, 100.0])
        cost = np.full(3, 0.001)
        out = running_release_times(ready, cost)
        assert out[-1] == pytest.approx(100.0)

    def test_monotonic_output(self):
        rng = np.random.default_rng(9)
        ready = rng.random(500) * 100
        cost = rng.random(500)
        out = running_release_times(ready, cost)
        assert np.all(np.diff(out) >= -1e-9)

    def test_empty(self):
        assert running_release_times(np.zeros(0), np.zeros(0)).size == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            running_release_times(np.zeros(3), np.zeros(4))
