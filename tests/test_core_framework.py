"""Tests for the push-button ReGraph framework."""

import numpy as np
import pytest

from repro.apps.reference import (
    bfs_reference,
    closeness_reference,
    pagerank_reference,
)
from repro.arch.config import PipelineConfig
from repro.core.framework import ReGraph


@pytest.fixture(scope="module")
def framework():
    return ReGraph(
        "U280",
        pipeline=PipelineConfig(gather_buffer_vertices=512),
        num_pipelines=6,
    )


@pytest.fixture(scope="module")
def preprocessed(framework, small_rmat):
    return framework.preprocess(small_rmat)


class TestPreprocess:
    def test_plan_covers_graph(self, preprocessed, small_rmat):
        assert preprocessed.plan.total_edges() == small_rmat.num_edges

    def test_timings_recorded(self, preprocessed):
        assert preprocessed.dbg_seconds > 0
        assert preprocessed.schedule_seconds > 0

    def test_resources_feasible(self, preprocessed):
        assert preprocessed.resources.feasible()

    def test_vertex_mapping_roundtrip(self, preprocessed, small_rmat, rng):
        props = rng.random(small_rmat.num_vertices)
        relabelled = props[preprocessed.dbg.inverse]
        np.testing.assert_array_equal(
            preprocessed.to_original_order(relabelled), props
        )

    def test_no_dbg_mode(self, framework, small_rmat):
        pre = framework.preprocess(small_rmat, use_dbg=False)
        assert pre.graph is small_rmat

    def test_forced_combo_passthrough(self, framework, small_rmat):
        pre = framework.preprocess(small_rmat, forced_combo=(6, 0))
        assert pre.plan.accelerator.label == "6L0B"


class TestRunResults:
    """Results come back in *input-graph* vertex order."""

    def test_pagerank_original_order(self, framework, preprocessed, small_rmat):
        run = framework.run_pagerank(preprocessed, max_iterations=8)
        ref = pagerank_reference(small_rmat, iterations=run.iterations)
        assert np.max(np.abs(run.result - ref)) < 1e-5

    def test_bfs_root_in_original_ids(self, framework, preprocessed, small_rmat):
        root = 17
        run = framework.run_bfs(preprocessed, root=root)
        np.testing.assert_array_equal(
            run.props, bfs_reference(small_rmat, root)
        )

    def test_closeness_scalar_result(self, framework, preprocessed, small_rmat):
        run = framework.run_closeness(preprocessed, root=3)
        assert run.result == pytest.approx(closeness_reference(small_rmat, 3))

    def test_run_accepts_raw_graph(self, framework, small_rmat):
        run = framework.run_pagerank(small_rmat, max_iterations=2)
        assert run.iterations == 2

    def test_report_metadata(self, framework, preprocessed):
        run = framework.run_pagerank(preprocessed, max_iterations=2)
        assert run.graph_name == "rmat13"
        assert "L" in run.accel_label and "B" in run.accel_label
        assert run.mteps > 0


class TestModelCaching:
    def test_model_lazy_singleton(self, framework):
        assert framework.model is framework.model
