"""Property-based functional equivalence of the full simulated system.

For random small graphs, the accelerator simulation (DBG + partitioning
+ scheduling + heterogeneous pipelines + apply) must produce *exactly*
the reference algorithm's answers — the end-to-end invariant that makes
every throughput number in the benchmarks trustworthy.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.reference import bfs_reference, pagerank_reference

from tests.helpers import make_framework
from tests.strategies import graphs as random_graphs


def _framework():
    return make_framework("U280", buffer_vertices=32, num_pipelines=3)


class TestEndToEndEquivalence:
    @given(random_graphs(), st.integers(0, 3))
    @settings(max_examples=20, deadline=None)
    def test_bfs_matches_reference(self, graph, root_seed):
        root = root_seed % graph.num_vertices
        fw = _framework()
        run = fw.run_bfs(graph, root=root)
        np.testing.assert_array_equal(
            run.props, bfs_reference(graph, root)
        )

    @given(random_graphs())
    @settings(max_examples=12, deadline=None)
    def test_pagerank_matches_reference(self, graph):
        fw = _framework()
        run = fw.run_pagerank(graph, max_iterations=5)
        ref = pagerank_reference(graph, iterations=run.iterations)
        atol = max(float(graph.out_degrees().max()), 1.0) / 2**30 * (
            run.iterations + 1
        ) + 1e-6
        assert np.max(np.abs(run.result - ref)) < max(atol, 1e-4)

    @given(random_graphs())
    @settings(max_examples=12, deadline=None)
    def test_plan_always_validates(self, graph):
        fw = _framework()
        pre = fw.preprocess(graph)
        pre.plan.validate(expected_edges=graph.num_edges)

    @given(random_graphs())
    @settings(max_examples=10, deadline=None)
    def test_timing_always_positive_and_finite(self, graph):
        fw = _framework()
        run = fw.run_pagerank(graph, max_iterations=2, functional=False)
        assert np.isfinite(run.total_cycles)
        assert run.total_cycles > 0
        assert run.mteps >= 0
