"""Differential harness: compiled functional pass + trace synthesis.

The compiled functional engine batches whole partition groups through
the apps' UDFs; its contract is the same as the compiled timing core's —
*bit-identity* with the interpreted oracle, not approximate agreement.
Every RunReport digest and every final property array must match the
per-task interpreted walk exactly, across both devices, all five apps
and all graph families; synthesized traces must carry events equal to
the interpreted re-simulation and pass the conformance invariants
verbatim; placement what-if probes must decide exactly as the full
evaluation oracle does.

Tier-1 keeps a representative slice; the ``slow`` marker carries the
full device × app × family sweep plus hypothesis properties.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.compiled import (
    compiled_stats,
    configure_compiled,
    functional_engine,
    lower_functional_plan,
    reset_compiled_stats,
)
from repro.arch.trace import trace_plan
from repro.check.invariants import check_trace
from repro.core.framework import ReGraph
from repro.faults import BitFlipFault, FaultInjector, FaultPlan
from repro.faults.resilience import ResiliencePolicy
from repro.hbm.channel import HbmChannelModel
from repro.perf import configure_cache, get_cache
from repro.perf.simcache import DEFAULT_CACHE_ENTRIES

from tests.helpers import make_framework, make_pipeline_config
from tests.strategies import channel_param_perturbations
from tests.test_compiled_equivalence import (
    ALL_APPS,
    DEVICES,
    dispatch,
    family_graph,
    run_both_paths,
    run_report_digest,
)


@pytest.fixture(autouse=True)
def fresh_state():
    """Each test starts with compiled ON and an empty cache, and leaves
    the process-global switches at their defaults."""
    configure_cache(enabled=True, max_entries=DEFAULT_CACHE_ENTRIES)
    get_cache().clear()
    configure_compiled(True)
    reset_compiled_stats()
    yield
    configure_cache(enabled=True, max_entries=DEFAULT_CACHE_ENTRIES)
    get_cache().clear()
    configure_compiled(True)
    reset_compiled_stats()


# ---------------------------------------------------------------------------
# Tier-1: representative slice of the matrix
# ---------------------------------------------------------------------------
class TestFunctionalEquivalence:
    @pytest.mark.parametrize("app", ALL_APPS)
    def test_every_app_digest_and_props_identical(self, app):
        graph = family_graph("rmat", weighted=(app == "sssp"))
        compiled, interpreted = run_both_paths(app, "U280", graph)
        assert run_report_digest(compiled) == run_report_digest(interpreted)
        np.testing.assert_array_equal(compiled.props, interpreted.props)
        assert compiled.props.dtype == interpreted.props.dtype

    @pytest.mark.parametrize("family", ("rmat", "powerlaw", "uniform"))
    def test_every_graph_family_digest_identical(self, family):
        graph = family_graph(family)
        compiled, interpreted = run_both_paths("pagerank", "U50", graph)
        assert run_report_digest(compiled) == run_report_digest(interpreted)
        np.testing.assert_array_equal(compiled.props, interpreted.props)

    @pytest.mark.parametrize("device", DEVICES)
    def test_both_devices_digest_identical(self, device):
        graph = family_graph("powerlaw")
        compiled, interpreted = run_both_paths("bfs", device, graph)
        assert run_report_digest(compiled) == run_report_digest(interpreted)
        np.testing.assert_array_equal(compiled.props, interpreted.props)

    def test_routing_counters_attribute_each_pass(self):
        graph = family_graph("rmat")
        framework = make_framework()
        run = framework.run_pagerank(graph, max_iterations=5)
        stats = compiled_stats()
        assert stats["functional_plans"] == 1
        assert stats["functional_iterations"] == run.iterations
        assert stats["functional_batches"] >= run.iterations
        assert stats["functional_fallbacks"] == 0
        configure_compiled(False)
        framework.run_pagerank(graph, max_iterations=3)
        assert compiled_stats()["functional_fallbacks"] > 0

    def test_structure_lowered_once_and_reused(self):
        framework = make_framework()
        pre = framework.preprocess(family_graph("rmat"))
        engine = functional_engine(pre.plan)
        assert functional_engine(pre.plan) is engine
        fplan = lower_functional_plan(pre.plan)
        planned_tasks = sum(
            len(t) for t in pre.plan.little_tasks
        ) + sum(len(t) for t in pre.plan.big_tasks)
        assert len(fplan.nodes) == planned_tasks
        assert sum(n.num_edges for n in fplan.nodes) == (
            pre.plan.total_edges()
        )


class TestFaultFallback:
    def test_active_bit_flip_routes_interpreted_on_both_paths(self):
        # An open bit-flip window owns the injector RNG, so compiled and
        # interpreted runs must both take the interpreted functional
        # walk — and therefore corrupt, retry and converge identically.
        plan = FaultPlan(
            seed=13,
            bit_flips=(
                BitFlipFault(probability=0.05, detectable=True),
            ),
        )
        graph = family_graph("rmat")
        compiled, interpreted = run_both_paths(
            "pagerank", "U280", graph,
            fault_plan=plan, resilience=ResiliencePolicy(),
        )
        assert run_report_digest(compiled) == run_report_digest(interpreted)
        assert compiled.health.to_dict() == interpreted.health.to_dict()

    def test_silent_flip_digest_identical(self):
        plan = FaultPlan(
            seed=29,
            bit_flips=(
                BitFlipFault(probability=0.1, detectable=False),
            ),
        )
        graph = family_graph("uniform")
        compiled, interpreted = run_both_paths(
            "pagerank", "U280", graph,
            fault_plan=plan, resilience=ResiliencePolicy(),
        )
        assert run_report_digest(compiled) == run_report_digest(interpreted)
        np.testing.assert_array_equal(compiled.props, interpreted.props)

    def test_fallback_counter_increments_while_fault_active(self):
        plan = FaultPlan(
            seed=13,
            bit_flips=(BitFlipFault(probability=0.05),),
        )
        graph = family_graph("rmat")
        framework = make_framework()
        framework.run_pagerank(
            graph, max_iterations=4,
            fault_plan=plan, resilience=ResiliencePolicy(),
        )
        stats = compiled_stats()
        assert stats["functional_fallbacks"] > 0

    def test_inactive_windows_do_not_trip_the_gate(self):
        injector = FaultInjector(FaultPlan(
            seed=1,
            bit_flips=(
                BitFlipFault(probability=0.0),
                BitFlipFault(probability=0.5, onset_cycle=1e12),
            ),
        ))
        assert not injector.functional_faults_active()
        injector.now = 2e12
        assert injector.functional_faults_active()


class TestTraceSynthesis:
    def _plan_and_framework(self, family="rmat", device="U280"):
        framework = make_framework(platform=device)
        pre = framework.preprocess(family_graph(family))
        return framework, pre

    @pytest.mark.parametrize("device", DEVICES)
    def test_events_equal_interpreted_resimulation(self, device):
        framework, pre = self._plan_and_framework(device=device)
        channel = HbmChannelModel()
        synthesized = trace_plan(pre.plan, channel)
        configure_compiled(False)
        interpreted = trace_plan(pre.plan, channel)
        assert synthesized.events == interpreted.events
        assert synthesized.makespan == interpreted.makespan

    def test_synthesized_trace_passes_conformance_invariants(self):
        framework, pre = self._plan_and_framework(family="powerlaw")
        channel = HbmChannelModel()
        trace = trace_plan(pre.plan, channel)
        violations = check_trace(
            trace,
            plan=pre.plan,
            platform=framework.platform,
            channel=channel,
        )
        assert violations == []

    def test_routing_counters(self):
        _, pre = self._plan_and_framework()
        channel = HbmChannelModel()
        trace_plan(pre.plan, channel)
        assert compiled_stats()["traces_synthesized"] == 1
        configure_compiled(False)
        trace_plan(pre.plan, channel)
        stats = compiled_stats()
        assert stats["traces_synthesized"] == 1
        assert stats["traces_interpreted"] == 1

    def test_faulty_channel_always_interpreted(self):
        # A live fault site makes task timings depend on mutable
        # injector state; synthesizing from the compiled memo would
        # freeze that state, so such channels must re-simulate.
        _, pre = self._plan_and_framework()
        injector = FaultInjector(FaultPlan(seed=3))
        channel = HbmChannelModel(fault_site=injector)
        trace_plan(pre.plan, channel)
        stats = compiled_stats()
        assert stats["traces_synthesized"] == 0
        assert stats["traces_interpreted"] == 1


class TestPlacementProbes:
    def test_incremental_decisions_match_full_oracle_on_soak(self):
        from repro.chaos.fleet_soak import FleetSoakConfig, run_fleet_soak
        from repro.fleet.runtime import FleetPolicy
        from repro.perf import PerfConfig

        config = FleetSoakConfig(seed=7, jobs=6)
        results = {}
        for mode in ("incremental", "full"):
            results[mode] = run_fleet_soak(
                config,
                policy=FleetPolicy(placement_probe_mode=mode),
                perf=PerfConfig(workers=1),
            )
        incremental, full = results["incremental"], results["full"]
        assert incremental.report.assignment_log() == (
            full.report.assignment_log()
        )
        assert incremental.report.digest() == full.report.digest()
        probes = incremental.perf["placement"]
        assert probes["probes"] > 0
        assert probes["evaluator_builds"] > 0
        assert probes["full_evaluations"] == 0
        assert full.perf["placement"]["full_evaluations"] > 0

    def test_param_change_dirties_incrementally_and_agrees_with_full(self):
        from repro.fleet.job import Job
        from repro.fleet.placement import PlacementEngine
        from repro.fleet.replica import make_replica
        from repro.chaos.spec import GraphSpec
        from repro.hbm.channel import HbmTimingParams

        job = Job(
            job_id="j0", app="pagerank",
            graph=GraphSpec(
                kind="rmat", vertices=256, edges=2048, seed=3
            ),
            max_iterations=10,
        )
        graph = job.graph.build()
        slow_params = HbmTimingParams(min_latency=48.0, max_latency=112.0)
        replicas = []
        for rid, params in (("r0", None), ("r1", slow_params)):
            replica = make_replica(rid, "U280")
            if params is not None:
                replica.handle.framework.channel = HbmChannelModel(params)
            replicas.append(replica)

        engines = {
            mode: PlacementEngine(probe_mode=mode)
            for mode in ("incremental", "full")
        }
        for replica in replicas:
            predictions = {
                mode: engine.predicted_seconds(replica, job, graph)
                for mode, engine in engines.items()
            }
            assert predictions["incremental"] == predictions["full"]
            assert predictions["incremental"] > 0
        stats = engines["incremental"].probe_stats
        # One kept evaluator; probing the slow replica dirtied only the
        # non-empty nodes instead of building or cold-evaluating again.
        assert stats["evaluator_builds"] == 1
        assert stats["incremental_refreshes"] == 1

    def test_probe_mode_validated(self):
        from repro.errors import UserInputError
        from repro.fleet.placement import PlacementEngine
        from repro.fleet.runtime import FleetPolicy

        with pytest.raises(UserInputError):
            PlacementEngine(probe_mode="bogus")
        with pytest.raises(UserInputError):
            FleetPolicy(placement_probe_mode="bogus")


# ---------------------------------------------------------------------------
# Slow: the full matrix + properties
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestFullMatrix:
    @pytest.mark.parametrize("device", DEVICES)
    @pytest.mark.parametrize("app", ALL_APPS)
    @pytest.mark.parametrize("family", ("rmat", "powerlaw", "uniform"))
    def test_digest_and_props_identical(self, device, app, family):
        graph = family_graph(family, weighted=(app == "sssp"))
        compiled, interpreted = run_both_paths(app, device, graph)
        assert run_report_digest(compiled) == run_report_digest(interpreted)
        np.testing.assert_array_equal(compiled.props, interpreted.props)


@pytest.mark.slow
class TestProperties:
    @given(params=channel_param_perturbations())
    @settings(max_examples=15, deadline=None)
    def test_digest_identical_under_any_channel_params(self, params):
        # Channel parameters steer timing, never the functional result;
        # both must still agree bit-for-bit between the paths.
        graph = family_graph("rmat")
        reports = []
        for compiled in (True, False):
            get_cache().clear()
            configure_compiled(compiled)
            framework = ReGraph(
                "U280",
                pipeline=make_pipeline_config(),
                channel=HbmChannelModel(params),
            )
            reports.append(
                dispatch(framework, "pagerank", graph, max_iterations=6)
            )
        configure_compiled(True)
        assert run_report_digest(reports[0]) == run_report_digest(reports[1])
        np.testing.assert_array_equal(reports[0].props, reports[1].props)

    @given(params=channel_param_perturbations())
    @settings(max_examples=15, deadline=None)
    def test_synthesized_trace_equal_under_any_channel_params(self, params):
        framework = make_framework()
        pre = framework.preprocess(family_graph("uniform"))
        channel = HbmChannelModel(params)
        synthesized = trace_plan(pre.plan, channel)
        configure_compiled(False)
        interpreted = trace_plan(pre.plan, channel)
        assert synthesized.events == interpreted.events
