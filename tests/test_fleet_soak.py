"""Fleet soak acceptance tests.

The headline scenario from the robustness roadmap: a fixed-seed soak
over three replicas with one permanently killed mid-campaign must end
with **every admitted job either completed conformance-clean on a
survivor or terminated with a typed error — zero jobs lost — and the
whole outcome bit-reproducible from the seed**.
"""

import pytest

from repro.chaos.fleet_soak import (
    FleetSoakConfig,
    FleetSoakResult,
    build_pool,
    generate_jobs,
    generate_kills,
    run_fleet_soak,
)
from repro.errors import UserInputError
from repro.fleet import RETIRED

SOAK_SEED = 7
SOAK_JOBS = 16

#: The acceptance configuration: 3 replicas (both device types), one
#: seeded permanent kill landing mid-campaign.
ACCEPTANCE = FleetSoakConfig(
    seed=SOAK_SEED,
    jobs=SOAK_JOBS,
    replicas=("U280", "U280", "U50"),
    random_kills=1,
)

TYPED_ERRORS = {
    "FleetOverloadError",
    "NoServingReplicaError",
    "JobFailoverExhaustedError",
}


@pytest.fixture(scope="module")
def soak_result():
    return run_fleet_soak(ACCEPTANCE)


class TestSoakAcceptance:
    def test_kill_lands_mid_campaign(self, soak_result):
        kills = soak_result.kills
        assert len(kills) == 1
        jobs = generate_jobs(ACCEPTANCE)
        first, last = jobs[0].submit_time, jobs[-1].submit_time
        assert first < kills[0].at_seconds < last

    def test_killed_replica_is_permanently_retired(self, soak_result):
        report = soak_result.report
        killed = [r for r in report.replicas if r["killed"]]
        assert len(killed) == 1
        assert killed[0]["state"] == RETIRED
        assert report.counters["kills"] == 1
        # No post-kill assignment ever targets the dead replica.
        kill = soak_result.kills[0]
        for record in report.assignments:
            if record.replica_id == kill.replica_id:
                assert record.time <= kill.at_seconds

    def test_zero_jobs_lost(self, soak_result):
        report = soak_result.report
        assert len(report.jobs) == SOAK_JOBS
        assert report.lost == 0
        assert report.admitted == report.completed + report.failed

    def test_every_outcome_is_clean_or_typed(self, soak_result):
        for result in soak_result.report.jobs:
            if result.status == "completed":
                assert not result.violations, result.job_id
                assert result.replica_id, result.job_id
            else:
                assert result.error_type in TYPED_ERRORS, (
                    result.job_id, result.error_type
                )
                assert result.detail, result.job_id

    def test_completions_ran_on_survivors(self, soak_result):
        report = soak_result.report
        kill = soak_result.kills[0]
        for result in report.jobs:
            if result.status != "completed":
                continue
            if result.replica_id == kill.replica_id:
                # Finished on the doomed card only before it died.
                assert result.finish_time <= kill.at_seconds

    def test_soak_passes_overall(self, soak_result):
        assert soak_result.report.passed

    def test_bit_reproducible_from_seed(self, soak_result):
        again = run_fleet_soak(ACCEPTANCE)
        assert again.report.digest() == soak_result.report.digest()
        assert (
            again.report.assignment_log()
            == soak_result.report.assignment_log()
        )

    def test_result_round_trip(self, soak_result):
        clone = FleetSoakResult.from_dict(soak_result.to_dict())
        assert clone.config == ACCEPTANCE
        assert clone.report.digest() == soak_result.report.digest()


class TestSoakGeneration:
    def test_job_stream_is_deterministic(self):
        assert generate_jobs(ACCEPTANCE) == generate_jobs(ACCEPTANCE)

    def test_different_seeds_differ(self):
        other = FleetSoakConfig(
            seed=SOAK_SEED + 1, jobs=SOAK_JOBS, random_kills=1
        )
        assert generate_jobs(other) != generate_jobs(ACCEPTANCE)

    def test_submit_times_are_ordered(self):
        jobs = generate_jobs(ACCEPTANCE)
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)

    def test_sssp_jobs_get_weighted_graphs(self):
        jobs = generate_jobs(
            FleetSoakConfig(seed=2, jobs=40)
        )
        sssp = [j for j in jobs if j.app == "sssp"]
        assert sssp and all(j.graph.weighted for j in sssp)

    def test_random_kills_leave_a_survivor(self):
        config = FleetSoakConfig(seed=1, jobs=4, random_kills=10)
        kills = generate_kills(config)
        assert len(kills) == len(config.replicas) - 1
        assert len({k.replica_id for k in kills}) == len(kills)

    def test_explicit_kills_win_over_random(self):
        from repro.fleet import ReplicaKill

        config = FleetSoakConfig(
            seed=1, jobs=4, random_kills=2,
            kills=(ReplicaKill("r1", 0.001),),
        )
        kills = generate_kills(config)
        assert kills == [ReplicaKill("r1", 0.001)]

    def test_pool_matches_devices(self):
        pool = build_pool(ACCEPTANCE)
        assert [r.device for r in pool] == ["U280", "U280", "U50"]
        assert [r.replica_id for r in pool] == ["r0", "r1", "r2"]

    def test_config_round_trip(self):
        assert FleetSoakConfig.from_dict(ACCEPTANCE.to_dict()) == ACCEPTANCE

    def test_config_validation(self):
        with pytest.raises(UserInputError):
            FleetSoakConfig(jobs=0)
        with pytest.raises(UserInputError):
            FleetSoakConfig(replicas=())
        with pytest.raises(UserInputError):
            FleetSoakConfig(intensity="apocalyptic")
        with pytest.raises(UserInputError):
            FleetSoakConfig(fault_fraction=1.5)


class TestJournaledSoak:
    """Durability attachment (docs/DURABILITY.md): the journal/store
    change nothing about the served outcome and ride beside the report
    as a side-channel, like the perf counters."""

    def test_journaled_digest_matches_in_memory(self, soak_result,
                                                tmp_path):
        journaled = run_fleet_soak(
            ACCEPTANCE,
            journal_path=tmp_path / "fleet.journal",
            store_path=tmp_path / "results.jsonl",
            journal_fsync=False,
        )
        assert journaled.report.digest() == soak_result.report.digest()
        # A fresh, uninterrupted run restores/suppresses nothing.
        assert journaled.recovery == {
            "results_restored": 0,
            "duplicates_suppressed": 0,
            "replay_divergences": 0,
        }

    def test_recovery_side_channel_serialises(self, soak_result,
                                              tmp_path):
        journaled = run_fleet_soak(
            ACCEPTANCE,
            journal_path=tmp_path / "fleet.journal",
            journal_fsync=False,
        )
        data = journaled.to_dict()
        assert "recovery" in data
        # ... but never inside the digest-bearing report itself.
        assert "recovery" not in data["report"]
        restored = FleetSoakResult.from_dict(data)
        assert restored.recovery == journaled.recovery
        # In-memory soaks serialize without the key at all, keeping
        # pre-durability result files byte-identical.
        assert "recovery" not in soak_result.to_dict()
