"""Property-based tests of the fleet serving runtime.

The central property — the ISSUE's determinism contract — is that a
fleet run is a pure function of its inputs: the same job mix (seeded
graphs + fault plans) served twice over identical fresh pools yields the
identical job→replica assignment log, bit-identical report digests, and
the same terminal statuses.  A second property pins the no-loss
invariant across arbitrary mixes: whatever the fault plans do, every
admitted job reaches a terminal typed outcome.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetPolicy, FleetRuntime, make_replica
from repro.faults.resilience import ResiliencePolicy

from tests.strategies import fleet_job_mixes

pytestmark = pytest.mark.slow

#: Fail fast so unsurvivable drawn fault plans don't burn retries.
PROPERTY_POLICY = dict(
    max_attempts=2,
    resilience=ResiliencePolicy(max_retries=1, breaker_threshold=3),
)


def _pool(devices):
    return [
        make_replica(f"r{i}", device) for i, device in enumerate(devices)
    ]


def _serve(jobs, devices):
    runtime = FleetRuntime(_pool(devices), FleetPolicy(**PROPERTY_POLICY))
    return runtime.run(jobs)


@settings(max_examples=15, deadline=None)
@given(
    jobs=fleet_job_mixes(max_jobs=4),
    devices=st.lists(
        st.sampled_from(("U280", "U50")), min_size=1, max_size=3
    ),
)
def test_same_inputs_same_assignment_log(jobs, devices):
    """Same seed + fault plan => identical job→replica assignment log."""
    first = _serve(jobs, devices)
    second = _serve(jobs, devices)
    assert first.assignment_log() == second.assignment_log()
    assert first.digest() == second.digest()
    assert [j.status for j in first.jobs] == [j.status for j in second.jobs]


@settings(max_examples=15, deadline=None)
@given(
    jobs=fleet_job_mixes(max_jobs=4),
    devices=st.lists(
        st.sampled_from(("U280", "U50")), min_size=1, max_size=2
    ),
)
def test_no_job_is_ever_lost(jobs, devices):
    """Every admitted job reaches a terminal, typed outcome."""
    report = _serve(jobs, devices)
    assert len(report.jobs) == len(jobs)
    assert report.lost == 0
    for result in report.jobs:
        assert result.status in ("completed", "rejected", "failed")
        if result.status != "completed":
            assert result.error_type and result.detail
        else:
            assert not result.violations
