"""The cache-poison chaos cell: corruption is contained, never served.

One end-to-end cell run carries all the oracles (module-scoped — the
cell runs the workload four times); the unit tests around it pin the
config validation and serialization surface.
"""

import pytest

from repro.chaos.cache_poison import (
    CachePoisonConfig,
    CachePoisonResult,
    run_cache_poison,
)
from repro.errors import UserInputError
from repro.perf.simcache import get_cache

#: Smaller than the defaults but still exercising every damage kind:
#: 2 apps x 2 graphs publish enough entries for 1 flip + 1 torn +
#: 1 stale victim.
CELL = CachePoisonConfig(
    graphs=2, vertices=96, edges=256, max_iterations=3,
    bit_flips=1, torn_writes=1, stale_entries=1,
)


@pytest.fixture(scope="module")
def outcome(tmp_path_factory):
    return run_cache_poison(CELL, tmp_path_factory.mktemp("poison"))


class TestConfig:
    def test_rejects_empty_apps(self):
        with pytest.raises(UserInputError):
            CachePoisonConfig(apps=())

    def test_rejects_zero_damage(self):
        with pytest.raises(UserInputError):
            CachePoisonConfig(bit_flips=0, torn_writes=0, stale_entries=0)

    def test_rejects_negative_damage(self):
        with pytest.raises(UserInputError):
            CachePoisonConfig(torn_writes=-1)

    def test_round_trips_through_dict(self):
        assert CachePoisonConfig.from_dict(CELL.to_dict()) == CELL


class TestOracles:
    def test_cell_passes(self, outcome):
        assert outcome.passed, outcome.to_dict()

    def test_digests_bit_identical_across_all_phases(self, outcome):
        assert outcome.reference_digest
        assert outcome.seeded_digest == outcome.reference_digest
        assert outcome.warm_digest == outcome.reference_digest
        assert outcome.poisoned_digest == outcome.reference_digest

    def test_warm_run_actually_served_from_tier2(self, outcome):
        assert outcome.entries_seeded > 0
        assert outcome.tier2_hits_warm > 0

    def test_every_victim_quarantined_never_served(self, outcome):
        assert len(outcome.poisoned_keys) == 3
        assert set(outcome.poisoned_keys) <= set(outcome.quarantined_keys)
        assert outcome.stale_served == 0

    def test_kill9_leftover_swept_and_junk_quarantined(self, outcome):
        assert outcome.swept_tmp >= 1
        assert outcome.scrub_quarantined >= 1

    def test_global_cache_state_restored(self, outcome):
        # The cell attaches/detaches a shared tier; the process-global
        # cache must come back single-tier and empty.
        cache = get_cache()
        assert cache.shared is None
        assert len(cache) == 0

    def test_result_serializes_with_verdict(self, outcome):
        data = outcome.to_dict()
        assert data["passed"] is True
        assert data["digests_equal"] is True
        assert data["all_victims_quarantined"] is True
        assert len(data["poison_log"]) >= 3


class TestResultVerdict:
    def test_fails_on_digest_divergence(self):
        result = CachePoisonResult(
            config=CELL, reference_digest="a", seeded_digest="a",
            warm_digest="a", poisoned_digest="b",
        )
        assert not result.digests_equal and not result.passed

    def test_fails_on_unquarantined_victim(self):
        result = CachePoisonResult(
            config=CELL, reference_digest="a", seeded_digest="a",
            warm_digest="a", poisoned_digest="a", entries_seeded=4,
            tier2_hits_warm=2, poisoned_keys=["k1", "k2"],
            quarantined_keys=["k1"], swept_tmp=1, scrub_quarantined=1,
        )
        assert not result.all_victims_quarantined and not result.passed
