"""Tests for bottleneck attribution and the roofline model."""

import pytest

from repro.model.bottleneck import attribute_partition, compare_pipeline_choice
from repro.model.roofline import (
    RooflinePoint,
    bandwidth_bound_gteps,
    resource_bound_gteps,
    resource_roofline_bounds,
)


class TestAttribution:
    def test_components_sum_to_estimate(self, rmat_partitions, perf_model):
        p = rmat_partitions.nonempty()[0]
        for kind in ("big", "little"):
            breakdown = attribute_partition(p, perf_model, kind)
            estimate = perf_model.estimate_partition(p, kind)
            assert breakdown.total_cycles == pytest.approx(
                estimate, rel=1e-6
            )

    def test_fractions_sum_to_one(self, rmat_partitions, perf_model):
        p = rmat_partitions.nonempty()[2]
        breakdown = attribute_partition(p, perf_model, "little")
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_dense_head_edge_supply_bound(self, rmat_partitions, perf_model):
        head = rmat_partitions.nonempty()[0]
        breakdown = attribute_partition(head, perf_model, "little")
        assert breakdown.dominant == "edge_supply"

    def test_sparse_tail_fixed_bound_on_little(
        self, rmat_partitions, perf_model
    ):
        tail = rmat_partitions.nonempty()[-1]
        breakdown = attribute_partition(tail, perf_model, "little")
        assert breakdown.dominant in ("fixed", "vertex_access")

    def test_invalid_kind(self, rmat_partitions, perf_model):
        with pytest.raises(ValueError):
            attribute_partition(
                rmat_partitions.nonempty()[0], perf_model, "medium"
            )

    def test_comparison_structure(self, rmat_partitions, perf_model):
        out = compare_pipeline_choice(
            rmat_partitions.nonempty()[-1], perf_model
        )
        assert out["preferred"] in ("little", "big")
        assert out["edges"] > 0


class TestRoofline:
    def test_bandwidth_bound(self):
        # 460 GB/s over 8-byte edges -> 57.5 GTEPS.
        assert bandwidth_bound_gteps(460.0) == pytest.approx(57.5)

    def test_resource_bound(self):
        assert resource_bound_gteps(10.0) == pytest.approx(8.0)

    def test_point_efficiency(self):
        p = RooflinePoint("x", gteps=5.0, lut_fraction=0.25, platform="U280")
        assert p.resource_efficiency == pytest.approx(20.0)

    def test_ratios(self):
        a = RooflinePoint("a", 10.0, 0.25, "U280")
        b = RooflinePoint("b", 5.0, 0.50, "U280")
        assert a.speedup_over(b) == pytest.approx(2.0)
        assert a.efficiency_over(b) == pytest.approx(4.0)

    def test_binding_classification(self):
        hungry = RooflinePoint("hungry", 2.0, 0.8, "U280")  # low efficiency
        lean = RooflinePoint("lean", 10.0, 0.1, "U280")     # high efficiency
        bounds = resource_roofline_bounds(
            [hungry, lean], {"U280": 460.0}
        )
        assert bounds["hungry"]["binding"] == "resource"
        assert bounds["lean"]["binding"] == "bandwidth"

    def test_port_bound_overrides(self):
        lean = RooflinePoint("lean", 10.0, 0.1, "U280")
        bounds = resource_roofline_bounds(
            [lean], {"U280": 460.0}, port_bounds={"lean": 11.0}
        )
        assert bounds["lean"]["binding"] == "port"
        assert bounds["lean"]["port_bound"] == 11.0
