"""Tests for the resource/frequency model (the Fig. 11 claims)."""

import pytest

from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.arch.platform import get_platform
from repro.arch.resources import (
    ResourceVector,
    accelerator_resources,
    big_pipeline_resources,
    frequency_mhz,
    little_pipeline_resources,
    report,
)


def _u280_config():
    return PipelineConfig(gather_buffer_vertices=65_536)


class TestResourceVector:
    def test_add(self):
        v = ResourceVector(lut=1, bram36=2) + ResourceVector(lut=3, uram=4)
        assert (v.lut, v.bram36, v.uram) == (4, 2, 4)

    def test_scale(self):
        v = ResourceVector(lut=10, ff=20).scale(3)
        assert (v.lut, v.ff) == (30, 60)


class TestPipelineCosts:
    def test_big_costs_more_lut(self):
        cfg = _u280_config()
        assert (
            big_pipeline_resources(cfg).lut
            > little_pipeline_resources(cfg).lut
        )

    def test_little_costs_more_bram(self):
        cfg = _u280_config()
        assert (
            little_pipeline_resources(cfg).bram36
            > big_pipeline_resources(cfg).bram36
        )

    def test_same_uram_both_types(self):
        cfg = _u280_config()
        assert (
            little_pipeline_resources(cfg).uram
            == big_pipeline_resources(cfg).uram
        )

    def test_uram_tracks_buffer_size(self):
        big_buf = PipelineConfig(gather_buffer_vertices=65_536)
        small_buf = PipelineConfig(gather_buffer_vertices=32_768)
        assert (
            little_pipeline_resources(big_buf).uram
            > little_pipeline_resources(small_buf).uram
        )


class TestFig11Claims:
    def test_best_config_lut_around_30pct(self):
        accel = AcceleratorConfig(7, 7, _u280_config())
        rep = report(accel, get_platform("U280"))
        assert 0.25 < rep.lut_util < 0.36

    def test_best_config_bram_under_50pct(self):
        accel = AcceleratorConfig(7, 7, _u280_config())
        rep = report(accel, get_platform("U280"))
        assert rep.bram_util < 0.50

    def test_uram_constant_around_96pct(self):
        u280 = get_platform("U280")
        utils = [
            report(AcceleratorConfig(m, 14 - m, _u280_config()), u280).uram_util
            for m in range(15)
        ]
        assert all(u == utils[0] for u in utils)
        assert 0.90 < utils[0] < 1.0

    def test_lut_decreases_with_more_little(self):
        u280 = get_platform("U280")
        luts = [
            report(AcceleratorConfig(m, 14 - m, _u280_config()), u280).lut_util
            for m in range(15)
        ]
        assert all(a >= b for a, b in zip(luts, luts[1:]))

    def test_bram_increases_with_more_little(self):
        u280 = get_platform("U280")
        brams = [
            report(AcceleratorConfig(m, 14 - m, _u280_config()), u280).bram_util
            for m in range(15)
        ]
        assert all(a <= b for a, b in zip(brams, brams[1:]))

    def test_frequency_above_210(self):
        u280 = get_platform("U280")
        for m in range(15):
            rep = report(AcceleratorConfig(m, 14 - m, _u280_config()), u280)
            assert rep.frequency_mhz > 210.0

    def test_all_combinations_feasible(self):
        u280 = get_platform("U280")
        for m in range(15):
            rep = report(AcceleratorConfig(m, 14 - m, _u280_config()), u280)
            assert rep.feasible()


class TestFrequencyModel:
    def test_monotonic_in_utilization(self):
        assert frequency_mhz(0.3, 3) <= frequency_mhz(0.2, 3)

    def test_slr_penalty(self):
        assert frequency_mhz(0.3, 3) < frequency_mhz(0.3, 1)

    def test_floor(self):
        assert frequency_mhz(5.0, 3) >= 180.0


class TestAcceleratorResources:
    def test_monotone_in_pipeline_count(self):
        cfg = _u280_config()
        small = accelerator_resources(AcceleratorConfig(2, 2, cfg))
        large = accelerator_resources(AcceleratorConfig(7, 7, cfg))
        assert large.lut > small.lut
        assert large.uram > small.uram

    def test_u50_uram_within_capacity(self):
        u50 = get_platform("U50")
        cfg = PipelineConfig(gather_buffer_vertices=32_768)
        rep = report(AcceleratorConfig(6, 6, cfg), u50)
        assert rep.uram_util <= 1.0
