"""CLI surface of ``repro chaos`` (run / replay / report /
kill-restart)."""

import json

import pytest

from repro.chaos import (
    DEFAULT_CHAOS_POLICY,
    run_cell,
    shrink_cell,
    write_bundle,
)
from repro.cli import build_parser, main

from tests.test_chaos_shrink import regression_cell


@pytest.fixture(scope="module")
def bundle_path(tmp_path_factory):
    cell = regression_cell()
    failure = run_cell(cell)
    shrunk = shrink_cell(cell, failure)
    return write_bundle(
        str(tmp_path_factory.mktemp("bundles")), cell, failure,
        DEFAULT_CHAOS_POLICY, shrunk=shrunk,
    )


class TestChaosRun:
    def test_small_campaign_exits_zero(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        code = main([
            "chaos", "run", "--cells", "6", "--chaos-seed", "3",
            "--report-json", str(report_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "6/6 cells survived" in out
        data = json.loads(report_path.read_text())
        assert len(data["results"]) == 6
        assert all(r["status"] == "ok" for r in data["results"])

    def test_run_parses_all_options(self):
        args = build_parser().parse_args([
            "chaos", "run", "--cells", "12", "--chaos-seed", "9",
            "--device", "U50", "--intensity", "heavy",
            "--bundle-dir", "/tmp/b", "--no-shrink", "--max-probes", "7",
        ])
        assert args.command == "chaos"
        assert args.chaos_command == "run"
        assert args.device == ["U50"]
        assert args.no_shrink and args.max_probes == 7

    def test_bad_intensity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["chaos", "run", "--intensity", "cataclysmic"]
            )

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos"])


class TestChaosReplay:
    def test_replay_reproduces(self, capsys, bundle_path):
        code = main(["chaos", "replay", bundle_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "reproduced bit-for-bit" in out
        assert "4 -> 1 fault event(s)" in out

    def test_tampered_digest_exits_one(self, capsys, bundle_path, tmp_path):
        bundle = json.loads(open(bundle_path).read())
        bundle["failure"]["digest"] = "0" * 64
        tampered = tmp_path / "tampered.repro.json"
        tampered.write_text(json.dumps(bundle))
        code = main(["chaos", "replay", str(tampered)])
        out = capsys.readouterr().out
        assert code == 1
        assert "DIGEST MISMATCH" in out

    def test_bad_schema_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.repro.json"
        bad.write_text(json.dumps({"schema": "nope/v0"}))
        assert main(["chaos", "replay", str(bad)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_bundle_exits_two(self, capsys):
        assert main(["chaos", "replay", "/no/such/bundle.json"]) == 2
        assert capsys.readouterr().err.startswith("error:")


class TestChaosReport:
    def test_report_summarises_run(self, capsys, tmp_path):
        report_path = tmp_path / "report.json"
        assert main([
            "chaos", "run", "--cells", "4", "--chaos-seed", "11",
            "--report-json", str(report_path),
        ]) == 0
        capsys.readouterr()
        code = main(["chaos", "report", str(report_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "4/4 cells survived" in out
        assert "breaker trips" in out


class TestKillRestart:
    """``repro chaos kill-restart`` — the durability chaos cell
    (docs/DURABILITY.md)."""

    def test_cell_passes_and_reports(self, capsys, tmp_path):
        report_path = tmp_path / "kr.json"
        code = main([
            "chaos", "kill-restart",
            "--num-jobs", "6", "--fleet-seed", "7",
            "--replica", "U280", "--replica", "U50",
            "--crashes", "1", "--corrupt", "torn-write",
            "--no-fsync",
            "--workdir", str(tmp_path / "wd"),
            "--report-json", str(report_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "kill-restart PASSED" in out
        assert "oracles: lost=0 duplicates=0" in out
        data = json.loads(report_path.read_text())
        assert data["passed"] is True
        assert data["equivalent"] is True
        assert data["restarts"] >= 1
        assert (tmp_path / "wd" / "fleet.journal").exists()

    def test_bad_corrupt_spec_returns_2(self, capsys, tmp_path):
        code = main([
            "chaos", "kill-restart", "--num-jobs", "2",
            "--corrupt", "gamma-ray", "--workdir", str(tmp_path),
        ])
        err = capsys.readouterr().err
        assert code == 2
        assert "gamma-ray" in err

    def test_bad_corrupt_target_returns_2(self, capsys, tmp_path):
        code = main([
            "chaos", "kill-restart", "--num-jobs", "2",
            "--corrupt", "bit-flip@ramdisk", "--workdir", str(tmp_path),
        ])
        assert code == 2
        assert "ramdisk" in capsys.readouterr().err

    def test_parser_accepts_all_options(self):
        args = build_parser().parse_args([
            "chaos", "kill-restart", "--num-jobs", "12",
            "--fleet-seed", "3", "--replica", "U280",
            "--intensity", "heavy", "--kills", "1", "--crashes", "3",
            "--corrupt", "bit-flip:4@store", "--iterations", "20",
            "--buffer-vertices", "128", "--pipelines", "2",
            "--workdir", "wd", "--no-fsync", "--report-json", "r.json",
        ])
        assert args.chaos_command == "kill-restart"
        assert args.crashes == 3
        assert args.corrupt == ["bit-flip:4@store"]
