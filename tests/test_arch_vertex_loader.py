"""Tests for the Big pipeline's Vertex Loader simulator."""

import numpy as np
import pytest

from repro.arch.config import PipelineConfig
from repro.arch.vertex_loader import VertexLoaderSim


@pytest.fixture()
def loader(config, channel):
    return VertexLoaderSim(config, channel)


class TestRequestDedup:
    def test_single_block_issues_one_request(self, loader):
        src = np.zeros(64, dtype=np.int64)  # all vertex 0, one block
        _, stats = loader.access_ready_times(src)
        assert stats.requests_issued == 1
        assert stats.requests_saved == 63

    def test_every_block_new_issues_per_edge(self, loader, config):
        stride = config.vertices_per_block
        src = np.arange(64, dtype=np.int64) * stride
        _, stats = loader.access_ready_times(src)
        assert stats.requests_issued == 64
        assert stats.requests_saved == 0

    def test_same_block_within_set_dedups(self, loader, config):
        # 16 vertices share each 512-bit block.
        src = np.arange(64, dtype=np.int64)  # 64 vertices -> 4 blocks
        _, stats = loader.access_ready_times(src)
        assert stats.requests_issued == 4

    def test_cache_carries_across_sets(self, config, channel):
        # Last block of set i == first block of set i+1: with the cache
        # only one request per distinct block is issued.
        src = np.repeat(np.arange(8, dtype=np.int64) * 16, 16)
        with_cache = VertexLoaderSim(config, channel)
        _, s1 = with_cache.access_ready_times(src)
        no_cache_cfg = PipelineConfig(
            gather_buffer_vertices=config.gather_buffer_vertices,
            last_block_cache=False,
        )
        without = VertexLoaderSim(no_cache_cfg, channel)
        _, s2 = without.access_ready_times(src)
        assert s1.requests_issued < s2.requests_issued

    def test_dedup_ratio(self, loader):
        src = np.zeros(128, dtype=np.int64)
        _, stats = loader.access_ready_times(src)
        assert stats.dedup_ratio == pytest.approx(127 / 128)


class TestReadyTimes:
    def test_one_ready_per_set(self, loader, config):
        src = np.arange(80, dtype=np.int64)
        ready, stats = loader.access_ready_times(src)
        assert ready.size == -(-80 // config.edges_per_set)
        assert stats.num_sets == ready.size

    def test_ready_monotonic(self, loader, rng):
        src = np.sort(rng.integers(0, 10_000, 800))
        ready, _ = loader.access_ready_times(src)
        assert np.all(np.diff(ready) >= 0)

    def test_includes_memory_latency(self, loader, channel):
        src = np.zeros(8, dtype=np.int64)
        ready, _ = loader.access_ready_times(src)
        assert ready[0] >= channel.params.min_latency

    def test_sparser_access_is_slower(self, loader):
        n = 4096
        dense = np.arange(n, dtype=np.int64)
        sparse = np.arange(n, dtype=np.int64) * 64
        r_dense, _ = loader.access_ready_times(dense)
        r_sparse, _ = loader.access_ready_times(sparse)
        assert r_sparse[-1] > r_dense[-1]

    def test_empty_input(self, loader):
        ready, stats = loader.access_ready_times(np.zeros(0, dtype=np.int64))
        assert ready.size == 0
        assert stats.num_edges == 0

    def test_non_multiple_of_set_size(self, loader):
        src = np.arange(13, dtype=np.int64)
        ready, stats = loader.access_ready_times(src)
        assert stats.num_edges == 13
        assert ready.size == 2


class TestThroughputModel:
    def test_steady_state_rate_bounded_by_window(self, config, channel):
        """With latency L and window D, a stream of distinct-block
        requests sustains at most one response per max(1, L/D) cycles."""
        loader = VertexLoaderSim(config, channel)
        n = 8192
        src = np.arange(n, dtype=np.int64) * config.vertices_per_block
        ready, stats = loader.access_ready_times(src)
        per_req = channel.effective_request_cycles(64.0)
        expected = stats.requests_issued * per_req
        assert ready[-1] == pytest.approx(expected, rel=0.25)
