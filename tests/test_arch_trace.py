"""Tests for execution tracing."""

import pytest

from repro.arch.trace import ExecutionTrace, TraceEvent, trace_plan
from repro.sched.scheduler import build_schedule


@pytest.fixture()
def trace(rmat_partitions, perf_model):
    plan = build_schedule(rmat_partitions, perf_model, 4)
    return trace_plan(plan)


class TestTraceStructure:
    def test_events_cover_both_clusters(self, trace):
        pipelines = {e.pipeline for e in trace.events}
        assert any(p.startswith("little") for p in pipelines)
        assert any(p.startswith("big") for p in pipelines)

    def test_events_sequential_per_pipeline(self, trace):
        by_pipe = {}
        for event in trace.events:
            by_pipe.setdefault(event.pipeline, []).append(event)
        for events in by_pipe.values():
            for a, b in zip(events, events[1:]):
                assert b.start_cycle == pytest.approx(a.end_cycle)

    def test_makespan_is_latest_end(self, trace):
        assert trace.makespan == max(e.end_cycle for e in trace.events)

    def test_durations_positive(self, trace):
        for event in trace.events:
            assert event.duration > 0


class TestTraceMetrics:
    def test_busy_cycles_sum_durations(self, trace):
        busy = trace.pipeline_busy()
        assert sum(busy.values()) == pytest.approx(
            sum(e.duration for e in trace.events)
        )

    def test_utilization_bounded(self, trace):
        for util in trace.utilization().values():
            assert 0.0 < util <= 1.0 + 1e-9

    def test_scheduler_balances_utilization(self, trace):
        utils = list(trace.utilization().values())
        # Model-guided balancing: no pipeline should idle most of the
        # iteration while another is saturated.
        assert min(utils) > 0.3


class TestGantt:
    def test_render_contains_all_pipelines(self, trace):
        chart = trace.render_gantt()
        for pipeline in {e.pipeline for e in trace.events}:
            assert pipeline in chart

    def test_render_mentions_makespan(self, trace):
        assert "makespan" in trace.render_gantt()

    def test_empty_trace(self):
        assert ExecutionTrace(events=[]).render_gantt() == "(empty trace)"
        assert ExecutionTrace(events=[]).makespan == 0.0

    def test_event_duration(self):
        event = TraceEvent("little[0]", "p0", 10.0, 25.0)
        assert event.duration == 15.0
