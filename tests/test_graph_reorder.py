"""Tests for degree-based grouping (DBG)."""

import numpy as np
import pytest

from repro.graph.reorder import (
    degree_based_grouping,
    identity_ordering,
)


class TestDbgStructure:
    def test_mapping_is_permutation(self, small_rmat):
        res = degree_based_grouping(small_rmat)
        assert np.array_equal(
            np.sort(res.mapping), np.arange(small_rmat.num_vertices)
        )

    def test_inverse_inverts_mapping(self, small_rmat):
        res = degree_based_grouping(small_rmat)
        np.testing.assert_array_equal(
            res.mapping[res.inverse], np.arange(small_rmat.num_vertices)
        )

    def test_edge_count_preserved(self, small_rmat):
        res = degree_based_grouping(small_rmat)
        assert res.graph.num_edges == small_rmat.num_edges

    def test_group_sizes_sum_to_v(self, small_rmat):
        res = degree_based_grouping(small_rmat)
        assert res.group_sizes.sum() == small_rmat.num_vertices

    def test_restore_roundtrips_properties(self, small_rmat, rng):
        res = degree_based_grouping(small_rmat)
        original = rng.random(small_rmat.num_vertices)
        relabelled = original[res.inverse]
        np.testing.assert_array_equal(res.restore(relabelled), original)

    def test_too_few_groups_raises(self, small_rmat):
        with pytest.raises(ValueError):
            degree_based_grouping(small_rmat, num_groups=1)


class TestDbgSemantics:
    def test_hot_vertices_get_low_ids(self, small_rmat):
        res = degree_based_grouping(small_rmat)
        deg = res.graph.in_degrees()
        head = deg[: small_rmat.num_vertices // 16].mean()
        tail = deg[-small_rmat.num_vertices // 16 :].mean()
        assert head > 10 * max(tail, 0.01)

    def test_group_degree_ordering(self, small_rmat):
        # Average in-degree must be non-increasing across the new ID space
        # when measured at group granularity.
        res = degree_based_grouping(small_rmat)
        deg = res.graph.in_degrees()
        bounds = np.cumsum(res.group_sizes[::-1])  # groups descend
        prev = np.inf
        lo = 0
        for hi in bounds:
            if hi > lo:
                avg = deg[lo:hi].mean()
                assert avg <= prev + 1e-9
                prev = avg
            lo = hi

    def test_stable_within_group(self, small_uniform):
        # With one dominant group (uniform graph), original order largely
        # survives: mapping restricted to the big group is increasing.
        res = degree_based_grouping(small_uniform)
        deg = small_uniform.in_degrees()
        groups_of = res.mapping  # new ids
        # pick vertices in the same (modal) degree band
        band = (deg >= deg.mean() / 2) & (deg < deg.mean())
        ids = groups_of[band]
        assert np.all(np.diff(ids) > 0)

    def test_concentrates_edges_in_first_partition(self, small_rmat):
        res = degree_based_grouping(small_rmat)
        u = small_rmat.num_vertices // 8
        before = (small_rmat.dst < u).sum() / small_rmat.num_edges
        after = (res.graph.dst < u).sum() / small_rmat.num_edges
        assert after > before


class TestIdentityOrdering:
    def test_identity_graph_untouched(self, small_rmat):
        res = identity_ordering(small_rmat)
        assert res.graph is small_rmat
        np.testing.assert_array_equal(
            res.mapping, np.arange(small_rmat.num_vertices)
        )

    def test_restore_is_noop(self, small_rmat, rng):
        res = identity_ordering(small_rmat)
        props = rng.random(small_rmat.num_vertices)
        np.testing.assert_array_equal(res.restore(props), props)
