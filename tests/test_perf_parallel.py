"""Tests for the parallel execution layer (repro.perf).

The contract under test: ``parallel_map`` preserves submission order
and task-exception semantics, falls back to the serial loop on pool
infrastructure failures, and every parallelized subsystem — chaos
campaigns, model sweeps, fleet soaks — produces *bit-identical* reports
with ``workers > 1`` as with the plain serial loop.
"""

import pytest

from repro.errors import UserInputError
from repro.perf import PerfConfig, configure_cache, get_cache, parallel_map
from repro.perf.simcache import DEFAULT_CACHE_ENTRIES

#: Enough to exercise the pool without slowing the tier-1 suite.
WORKERS = 2


@pytest.fixture(autouse=True)
def fresh_cache():
    configure_cache(enabled=True, max_entries=DEFAULT_CACHE_ENTRIES)
    get_cache().clear()
    yield
    configure_cache(enabled=True, max_entries=DEFAULT_CACHE_ENTRIES)
    get_cache().clear()


def _square(x):
    return x * x


def _raise_on_three(x):
    if x == 3:
        raise ValueError("task failure, not pool failure")
    return x


class TestParallelMap:
    def test_serial_path(self):
        assert parallel_map(_square, [1, 2, 3], workers=1) == [1, 4, 9]

    def test_single_item_stays_serial(self):
        # Even with workers requested, one item never pays fork latency.
        assert parallel_map(lambda x: x + 1, [41], workers=4) == [42]

    def test_parallel_preserves_submission_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=WORKERS) == [
            _square(i) for i in items
        ]

    def test_unpicklable_fn_falls_back_to_serial(self):
        # A lambda cannot cross the process boundary; the pool failure
        # degrades to the serial loop with identical results.
        assert parallel_map(lambda x: x * 2, [1, 2, 3], workers=WORKERS) == [
            2, 4, 6
        ]

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="task failure"):
            parallel_map(_raise_on_three, [1, 2, 3, 4], workers=WORKERS)
        with pytest.raises(ValueError, match="task failure"):
            parallel_map(_raise_on_three, [1, 2, 3, 4], workers=1)


class TestPerfConfig:
    def test_defaults(self):
        perf = PerfConfig()
        assert perf.workers == 1
        assert not perf.parallel
        assert perf.cache_enabled
        assert perf.cache_entries == DEFAULT_CACHE_ENTRIES

    def test_validation(self):
        with pytest.raises(UserInputError):
            PerfConfig(workers=0)
        with pytest.raises(UserInputError):
            PerfConfig(cache_entries=0)

    def test_roundtrip(self):
        perf = PerfConfig(workers=4, cache_enabled=False, cache_entries=64)
        assert PerfConfig.from_dict(perf.to_dict()) == perf
        assert perf.parallel

    def test_apply_configures_global_cache(self):
        PerfConfig(cache_enabled=False).apply()
        assert not get_cache().enabled
        PerfConfig(cache_enabled=True, cache_entries=128).apply()
        assert get_cache().enabled
        assert get_cache().max_entries == 128


class TestParallelEquivalence:
    """Parallel runs must merge into byte-identical reports."""

    def test_chaos_campaign_parallel_matches_serial(self):
        from repro.chaos import CampaignConfig, run_campaign

        config = CampaignConfig(seed=9, cells=4, max_iterations=15)
        serial = run_campaign(config, shrink_failures=False)
        parallel = run_campaign(
            config, shrink_failures=False,
            perf=PerfConfig(workers=WORKERS),
        )
        assert parallel.to_dict() == serial.to_dict()

    def test_model_sweep_parallel_matches_serial(self):
        from repro.arch.config import PipelineConfig
        from repro.graph.generators import rmat_graph
        from repro.model.sweep import sweep_parameter

        graph = rmat_graph(10, 8, seed=2)
        config = PipelineConfig(gather_buffer_vertices=256)
        serial = sweep_parameter(graph, config, "n_gpe", [2, 4, 8, 16])
        parallel = sweep_parameter(
            graph, config, "n_gpe", [2, 4, 8, 16],
            perf=PerfConfig(workers=WORKERS),
        )
        assert parallel == serial

    def test_fleet_soak_parallel_matches_serial(self):
        from repro.chaos.fleet_soak import FleetSoakConfig, run_fleet_soak

        config = FleetSoakConfig(seed=13, jobs=6, replicas=("U280", "U50"))
        serial = run_fleet_soak(config)
        get_cache().clear()
        parallel = run_fleet_soak(config, perf=PerfConfig(workers=WORKERS))
        assert parallel.report.digest() == serial.report.digest()
        # The perf stats ride beside the report, never inside it.
        assert parallel.perf["workers"] == WORKERS
        assert parallel.perf["prewarmed_specs"] >= 0
        assert "perf" not in parallel.report.to_dict()

    def test_fleet_soak_json_roundtrip_keeps_perf(self):
        from repro.chaos.fleet_soak import (
            FleetSoakConfig,
            FleetSoakResult,
            run_fleet_soak,
        )

        config = FleetSoakConfig(seed=13, jobs=4, replicas=("U280",))
        result = run_fleet_soak(config, perf=PerfConfig(workers=1))
        data = result.to_dict()
        back = FleetSoakResult.from_dict(data)
        assert back.perf == result.perf
        assert back.report.digest() == result.report.digest()
