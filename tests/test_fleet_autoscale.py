"""Warm-start autoscaling: policy, hysteresis, and digest purity.

The load-bearing property: the autoscaler changes *capacity*, never
*answers* — a soak served by an autoscaled pool produces bit-identical
per-job result digests to the same soak on a fixed pool.  Around that:
hysteresis (one bad observation never scales), cooldown (no thrash
after an action), scale-down drains retire instead of entering the
quarantine/canary loop, and spawned replicas warm-start from the
shared store.
"""

import pytest

from repro.chaos.fleet_soak import FleetSoakConfig, run_fleet_soak
from repro.errors import UserInputError
from repro.fleet import RETIRED, SERVING
from repro.fleet.admission import AdmissionStats
from repro.fleet.autoscale import (
    SCALE_DOWN,
    SCALE_UP,
    AutoscalePolicy,
    Autoscaler,
)
from repro.perf.sharedcache import SharedTimingStore
from repro.perf.simcache import SimulationCache

#: Trigger-happy policy: every knob at its most reactive, so short unit
#: scenarios can exercise both directions.
EAGER = AutoscalePolicy(
    min_replicas=1, max_replicas=4, queue_depth_per_replica=1.0,
    breach_streak=1, idle_streak=1, cooldown_seconds=0.0,
)


def _stats(submitted=0, shed=0):
    return AdmissionStats(submitted=submitted, shed_queue_depth=shed)


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"min_replicas": 0},
        {"min_replicas": 3, "max_replicas": 2},
        {"queue_depth_per_replica": 0.0},
        {"shed_rate_trigger": 1.5},
        {"p99_latency_target_seconds": -1.0},
        {"breach_streak": 0},
        {"idle_streak": 0},
        {"cooldown_seconds": -0.1},
        {"latency_window": 0},
    ])
    def test_bad_knobs_raise_typed_errors(self, kwargs):
        with pytest.raises(UserInputError):
            AutoscalePolicy(**kwargs)

    def test_round_trips_through_dict(self):
        policy = AutoscalePolicy(max_replicas=6, cooldown_seconds=0.25)
        assert AutoscalePolicy.from_dict(policy.to_dict()) == policy


class TestDecisionEngine:
    def test_hysteresis_needs_consecutive_breaches(self):
        scaler = Autoscaler(AutoscalePolicy(
            breach_streak=2, cooldown_seconds=0.0,
            queue_depth_per_replica=1.0,
        ))
        assert scaler.observe(0.0, 9, 1, 1, _stats(1)) is None
        # An intervening healthy observation resets the streak.
        assert scaler.observe(0.1, 0, 1, 1, _stats(2)) is None
        assert scaler.observe(0.2, 9, 1, 1, _stats(3)) is None
        assert scaler.observe(0.3, 9, 1, 1, _stats(4)) == SCALE_UP

    def test_cooldown_blocks_back_to_back_actions(self):
        scaler = Autoscaler(AutoscalePolicy(
            breach_streak=1, cooldown_seconds=1.0,
            queue_depth_per_replica=1.0,
        ))
        assert scaler.observe(0.0, 9, 1, 1, _stats(1)) == SCALE_UP
        scaler.note_spawned("as1", 0.0, warmed=0)
        # Still breached, but inside the cooldown window: hold.
        assert scaler.observe(0.5, 9, 2, 2, _stats(2)) is None
        assert scaler.observe(1.5, 9, 2, 2, _stats(3)) == SCALE_UP

    def test_shed_rate_breaches_even_with_shallow_queue(self):
        scaler = Autoscaler(AutoscalePolicy(
            breach_streak=1, cooldown_seconds=0.0,
            shed_rate_trigger=0.1,
        ))
        assert scaler.observe(
            0.0, 0, 1, 1, _stats(submitted=10, shed=5)
        ) == SCALE_UP

    def test_p99_latency_breaches_when_targeted(self):
        scaler = Autoscaler(AutoscalePolicy(
            breach_streak=1, cooldown_seconds=0.0,
            p99_latency_target_seconds=0.01,
        ))
        scaler.record_latency(0.5)
        assert scaler.observe(0.0, 0, 1, 1, _stats(1)) == SCALE_UP

    def test_scale_down_waits_for_idle_streak_and_floor(self):
        scaler = Autoscaler(AutoscalePolicy(
            min_replicas=1, idle_streak=2, cooldown_seconds=0.0,
        ))
        assert scaler.observe(0.0, 0, 2, 2, _stats()) is None
        assert scaler.observe(0.1, 0, 2, 2, _stats()) == SCALE_DOWN
        scaler.begin_scale_down("as1", 0.1)
        # At the floor: idle forever never shrinks below min_replicas.
        assert scaler.observe(0.2, 0, 1, 1, _stats()) is None
        assert scaler.observe(0.3, 0, 1, 1, _stats()) is None

    def test_max_replicas_caps_growth(self):
        scaler = Autoscaler(AutoscalePolicy(
            max_replicas=2, breach_streak=1, cooldown_seconds=0.0,
            queue_depth_per_replica=1.0,
        ))
        assert scaler.observe(0.0, 9, 2, 2, _stats(1)) is None

    def test_spawn_ids_avoid_collisions(self):
        scaler = Autoscaler(EAGER)
        assert scaler.next_replica_id(["r0", "as1"]) == "as2"
        assert scaler.next_replica_id(["r0"]) == "as3"

    def test_warm_start_pulls_from_the_shared_store(self, tmp_path):
        from repro.arch.timing import PartitionTiming

        store = SharedTimingStore(tmp_path, fsync=False)
        timing = PartitionTiming(
            compute_cycles=1.0, store_cycles=2.0, switch_cycles=3.0,
            num_edges=4, num_sets=1,
        )
        store.put("a" * 64, timing)
        scaler = Autoscaler(EAGER, store=store)
        cache = SimulationCache(max_entries=8)
        assert scaler.warm_start(cache) == 1
        assert scaler.warmed_entries == 1
        assert cache.contains("a" * 64)
        assert Autoscaler(EAGER).warm_start(cache) == 0  # no store


#: Single-replica soak under load: enough jobs to breach an eager
#: queue-depth trigger, then go idle and shrink back.
SOAK = FleetSoakConfig(
    seed=7, jobs=24, replicas=("U50",), intensity="light",
    max_iterations=8,
)


@pytest.fixture(scope="module")
def autoscaled():
    return run_fleet_soak(SOAK, autoscale=EAGER)


class TestSoakIntegration:
    def test_pool_actually_scaled(self, autoscaled):
        stats = autoscaled.autoscale
        assert stats["spawned"] >= 1
        actions = [d["action"] for d in stats["decisions"]]
        assert SCALE_UP in actions

    def test_scale_down_retires_instead_of_canarying(self, autoscaled):
        stats = autoscaled.autoscale
        downs = [
            d["replica_id"] for d in stats["decisions"]
            if d["action"] == SCALE_DOWN
        ]
        if not downs:
            pytest.skip("this stream never went idle long enough")
        by_id = {r["replica_id"]: r for r in autoscaled.report.replicas}
        for replica_id in downs:
            replica = by_id[replica_id]
            assert replica["state"] == RETIRED
            assert "scale-down" in (replica["retired_reason"] or "")

    def test_spawned_replicas_did_real_work(self, autoscaled):
        spawned = [
            r for r in autoscaled.report.replicas
            if r["replica_id"].startswith("as")
        ]
        assert spawned
        assert any(r["jobs_completed"] > 0 for r in spawned)

    def test_zero_jobs_lost_under_autoscaling(self, autoscaled):
        report = autoscaled.report
        assert report.lost == 0
        assert report.admitted == report.completed + report.failed

    def test_digest_purity_against_fixed_pool(self, autoscaled):
        """Capacity changes, answers don't: per-job result digests are
        bit-identical to the same stream on a never-scaled pool."""
        fixed = run_fleet_soak(SOAK)
        scaled_digests = {
            j.job_id: j.result_digest
            for j in autoscaled.report.jobs if j.status == "completed"
        }
        fixed_digests = {
            j.job_id: j.result_digest
            for j in fixed.report.jobs if j.status == "completed"
        }
        shared = set(scaled_digests) & set(fixed_digests)
        assert shared
        for job_id in shared:
            assert scaled_digests[job_id] == fixed_digests[job_id]

    def test_autoscale_stats_stay_out_of_the_digest(self, autoscaled):
        data = autoscaled.to_dict()
        assert "autoscale" in data
        assert "autoscale" not in data["report"]

    def test_min_replicas_floor_never_violated(self, autoscaled):
        serving_or_better = [
            r for r in autoscaled.report.replicas
            if r["state"] in (SERVING, RETIRED)
        ]
        assert serving_or_better  # the pool always has capacity left
