"""Chaos campaign engine: specs, generation, cell execution, soak."""

import numpy as np
import pytest

from repro.chaos import (
    CAMPAIGN_APPS,
    CampaignConfig,
    CampaignReport,
    CellResult,
    CellSpec,
    GraphSpec,
    generate_cells,
    run_campaign,
    run_cell,
)
from repro.compiled import configure_compiled
from repro.errors import UserInputError
from repro.faults.plan import DeadChannelFault, FaultPlan, LatencySpikeFault
from repro.perf import get_cache


# ----------------------------------------------------------------------
# Specs
# ----------------------------------------------------------------------
class TestGraphSpec:
    def test_build_is_deterministic(self):
        spec = GraphSpec(kind="powerlaw", vertices=500, edges=4000, seed=9)
        a, b = spec.build(), spec.build()
        assert a.num_vertices == b.num_vertices == 500
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)

    def test_weighted_spec_builds_weights(self):
        spec = GraphSpec(
            kind="uniform", vertices=300, edges=2000, seed=2, weighted=True
        )
        graph = spec.build()
        assert graph.weights is not None
        assert graph.weights.size == graph.num_edges

    def test_rmat_spec_builds(self):
        graph = GraphSpec(
            kind="rmat", vertices=512, edges=4096, seed=4
        ).build()
        assert graph.num_vertices == 512
        assert graph.num_edges > 0

    def test_dict_round_trip(self):
        spec = GraphSpec(
            kind="rmat", vertices=512, edges=4096, seed=4,
            exponent=1.7, weighted=True,
        )
        assert GraphSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_kind_rejected(self):
        with pytest.raises(UserInputError, match="kind"):
            GraphSpec(kind="torus", vertices=100, edges=200, seed=1)

    def test_degenerate_sizes_rejected(self):
        with pytest.raises(UserInputError, match="degenerate"):
            GraphSpec(kind="rmat", vertices=1, edges=10, seed=1)


class TestCellSpec:
    def test_dict_round_trip(self):
        cell = CellSpec(
            cell_id="x-1", device="U50", app="sssp",
            graph=GraphSpec(
                kind="powerlaw", vertices=400, edges=3000, seed=3,
                weighted=True,
            ),
            fault_plan=FaultPlan(
                seed=8, dead_channels=(DeadChannelFault(channel=1),)
            ),
            max_iterations=25,
        )
        assert CellSpec.from_dict(cell.to_dict()) == cell

    def test_with_plan_replaces_only_the_plan(self):
        cell = CellSpec(
            cell_id="x-2", device="U280", app="bfs",
            graph=GraphSpec(kind="uniform", vertices=300, edges=2000, seed=1),
            fault_plan=FaultPlan(
                seed=8, dead_channels=(DeadChannelFault(channel=1),)
            ),
        )
        swapped = cell.with_plan(FaultPlan(seed=8))
        assert swapped.fault_plan.is_empty
        assert swapped.cell_id == cell.cell_id
        assert swapped.graph == cell.graph


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
class TestGeneration:
    def test_same_config_same_cells(self):
        config = CampaignConfig(seed=5, cells=12)
        assert generate_cells(config) == generate_cells(config)

    def test_different_seed_different_cells(self):
        a = generate_cells(CampaignConfig(seed=5, cells=12))
        b = generate_cells(CampaignConfig(seed=6, cells=12))
        assert a != b

    def test_devices_round_robin(self):
        cells = generate_cells(CampaignConfig(seed=1, cells=8))
        assert [c.device for c in cells] == ["U280", "U50"] * 4

    def test_apps_within_oracle_set(self):
        cells = generate_cells(CampaignConfig(seed=2, cells=20))
        assert all(c.app in CAMPAIGN_APPS for c in cells)
        # SSSP cells must carry weighted graph specs.
        for cell in cells:
            assert cell.graph.weighted == (cell.app == "sssp")

    def test_config_validation(self):
        with pytest.raises(UserInputError, match="cell"):
            CampaignConfig(cells=0)
        with pytest.raises(UserInputError, match="intensity"):
            CampaignConfig(intensity="apocalyptic")
        with pytest.raises(UserInputError, match="device"):
            CampaignConfig(devices=())
        with pytest.raises(UserInputError, match="oracle"):
            CampaignConfig(apps=("pagerank", "radii"))

    def test_config_round_trip(self):
        config = CampaignConfig(seed=3, cells=7, intensity="heavy")
        assert CampaignConfig.from_dict(config.to_dict()) == config


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
class TestRunCell:
    def _cell(self, app="pagerank", plan=None, weighted=False):
        return CellSpec(
            cell_id="t-0", device="U280", app=app,
            graph=GraphSpec(
                kind="powerlaw", vertices=400, edges=3200, seed=7,
                weighted=weighted,
            ),
            fault_plan=plan if plan is not None else FaultPlan(),
        )

    def test_clean_cell_survives_with_breaker_state(self):
        result = run_cell(self._cell())
        assert result.survived
        assert result.violations == []
        assert result.digest
        # 4 pipelines -> 8 channels, every one reported.
        assert len(result.health["channel_breakers"]) == 8

    @pytest.mark.parametrize("app", CAMPAIGN_APPS)
    def test_every_oracle_app_executes(self, app):
        result = run_cell(self._cell(app=app, weighted=(app == "sssp")))
        assert result.survived, (app, result.detail)

    def test_identical_cell_identical_digest(self):
        plan = FaultPlan(
            seed=4, dead_channels=(DeadChannelFault(channel=0),)
        )
        a = run_cell(self._cell(plan=plan))
        b = run_cell(self._cell(plan=plan))
        assert a.digest == b.digest
        assert a.status == b.status == "ok"
        assert a.health["replans"] == b.health["replans"] >= 1

    def test_digest_identical_without_compiled_core(self):
        # A fault-heavy cell exercises both the compiled fast path
        # (clean iterations) and the interpreted fault walk; disabling
        # the compiled core must not move a single bit of the digest.
        plan = FaultPlan(
            seed=9,
            dead_channels=(DeadChannelFault(channel=2, onset_cycle=0.0),),
            latency_spikes=(
                LatencySpikeFault(
                    channel=1,
                    onset_cycle=0.0,
                    duration_cycles=1e4,
                    multiplier=5.0,
                ),
            ),
        )
        cell = self._cell(plan=plan)
        results = {}
        try:
            for compiled in (True, False):
                get_cache().clear()
                configure_compiled(compiled)
                results[compiled] = run_cell(cell)
        finally:
            configure_compiled(True)
            get_cache().clear()
        assert results[True].digest == results[False].digest
        assert results[True].health == results[False].health
        assert results[True].total_cycles == results[False].total_cycles

    def test_result_dict_round_trip(self):
        result = run_cell(self._cell())
        copy = CellResult.from_dict(result.to_dict())
        assert copy.digest == result.digest
        assert copy.status == result.status
        assert copy.health == result.health


# ----------------------------------------------------------------------
# Campaigns
# ----------------------------------------------------------------------
class TestCampaign:
    def test_bounded_campaign_survives(self):
        config = CampaignConfig(seed=21, cells=10)
        seen = []
        report = run_campaign(
            config, progress=lambda i, n, r: seen.append((i, n))
        )
        assert report.passed
        assert report.survived == 10 and report.failed == 0
        assert seen == [(i, 10) for i in range(10)]
        for result in report.results:
            assert result.health.get("channel_breakers"), result.cell_id

    def test_report_round_trip(self):
        report = run_campaign(CampaignConfig(seed=22, cells=4))
        copy = CampaignReport.from_dict(report.to_dict())
        assert copy.survived == report.survived
        assert [r.digest for r in copy.results] == [
            r.digest for r in report.results
        ]

    @pytest.mark.slow
    def test_acceptance_campaign_both_devices(self):
        """ISSUE acceptance: >= 50 seeded cells across U280/U50, zero
        conformance violations, breaker state in every health report."""
        config = CampaignConfig(seed=0, cells=50)
        report = run_campaign(config)
        assert {c["device"] for c in report.cells} == {"U280", "U50"}
        assert report.passed, [
            (r.cell_id, r.detail) for r in report.results if not r.survived
        ]
        for result in report.results:
            assert result.health["channel_breakers"]
        # The campaign actually soaked: faults were absorbed somewhere.
        assert sum(report.fault_counts().values()) > 0
