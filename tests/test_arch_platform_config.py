"""Tests for platform specs and pipeline/accelerator configuration."""

import pytest

from repro.arch.config import (
    AcceleratorConfig,
    PipelineConfig,
    default_pipeline_config,
)
from repro.arch.platform import PLATFORMS, get_platform


class TestPlatforms:
    def test_both_boards_registered(self):
        assert set(PLATFORMS) == {"U280", "U50"}

    def test_u280_table2_values(self):
        p = get_platform("U280")
        assert p.luts == 1_304_000
        assert p.urams == 960
        assert p.slrs == 3
        assert p.bandwidth_gbs == 460.0
        assert p.num_channels == 32
        assert p.num_ports == 32
        assert p.tdp_watts == 225.0

    def test_u50_table2_values(self):
        p = get_platform("U50")
        assert p.luts == 872_000
        assert p.urams == 640
        assert p.slrs == 2
        assert p.bandwidth_gbs == 316.0
        assert p.num_ports == 28
        assert p.tdp_watts == 70.0

    def test_pipeline_limits_match_paper(self):
        assert get_platform("U280").max_total_pipelines == 14
        assert get_platform("U50").max_total_pipelines == 12

    def test_gather_buffer_sizes(self):
        assert get_platform("U280").gather_buffer_vertices == 65_536
        assert get_platform("U50").gather_buffer_vertices == 32_768

    def test_lookup_case_insensitive(self):
        assert get_platform("u280").name == "Alveo U280"

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError):
            get_platform("U9000")


class TestPipelineConfig:
    def test_default_pe_counts(self):
        cfg = PipelineConfig()
        assert cfg.n_spe == 8 and cfg.n_gpe == 8  # Sec. VI-A

    def test_edges_per_set(self):
        assert PipelineConfig(n_spe=4).edges_per_set == 4

    def test_vertices_per_block(self):
        assert PipelineConfig().vertices_per_block == 16  # 512b / 32b

    def test_pingpong_blocks(self):
        # 32 KB total -> 16 KB per side -> 256 blocks of 64 B.
        assert PipelineConfig().pingpong_blocks_per_side == 256

    def test_store_cycles_eq2(self):
        cfg = PipelineConfig(gather_buffer_vertices=65_536)
        # S_buf/S_ram = 65536*4/8 = 32768 dominates Eq. 2.
        assert cfg.store_cycles == 32_768

    def test_proc_cycles_eq3(self):
        cfg = PipelineConfig(n_spe=8, n_gpe=8, ii_spe=1, ii_gpe=1)
        assert cfg.proc_cycles_per_edge == pytest.approx(1 / 8)

    def test_proc_cycles_with_slow_gather(self):
        cfg = PipelineConfig(n_spe=8, n_gpe=4, ii_spe=1, ii_gpe=2)
        # Bottleneck form: min(8/1, 4/2) = 2 edges per cycle.
        assert cfg.proc_cycles_per_edge == pytest.approx(1 / 2)

    def test_for_platform_adapts_buffer(self):
        cfg = default_pipeline_config(get_platform("U50"))
        assert cfg.gather_buffer_vertices == 32_768


class TestAcceleratorConfig:
    def test_label(self):
        assert AcceleratorConfig(7, 7).label == "7L7B"

    def test_total(self):
        assert AcceleratorConfig(3, 11).total_pipelines == 14

    def test_homogeneous_detection(self):
        assert AcceleratorConfig(0, 14).is_homogeneous
        assert AcceleratorConfig(14, 0).is_homogeneous
        assert not AcceleratorConfig(7, 7).is_homogeneous

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(-1, 2)

    def test_empty_accelerator_raises(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(0, 0)
