"""AdmissionController edge cases: capacity, refill, tenant buckets.

The serving gateway leans on three properties of admission control
that only show up at the edges: a burst is a *hard* capacity (the
burst-plus-first job sheds, deterministically), refill is a pure
function of the clock value handed in (virtual or wall, jumps included,
never negative), and the per-tenant buckets compose with the fleet-wide
bucket peek-then-take — a rejection at either level charges nothing
anywhere, so one tenant's quota storm cannot drain another's tokens.
"""

import pytest

from repro.errors import (
    FleetOverloadError,
    TenantQuotaExceededError,
    UserInputError,
)
from repro.fleet.admission import AdmissionController, TokenBucket


class _StubJob:
    """The controller only reads ``job_id``."""

    job_id = "edge-job"


JOB = _StubJob()


class TestTokenBucketEdges:
    def test_zero_rate_is_typed(self):
        with pytest.raises(UserInputError):
            TokenBucket(0.0, 1)

    def test_negative_rate_is_typed(self):
        with pytest.raises(UserInputError):
            TokenBucket(-1.0, 1)

    def test_non_finite_rate_is_typed(self):
        with pytest.raises(UserInputError):
            TokenBucket(float("inf"), 1)
        with pytest.raises(UserInputError):
            TokenBucket(float("nan"), 1)

    def test_zero_capacity_burst_is_typed(self):
        with pytest.raises(UserInputError):
            TokenBucket(1.0, 0)

    def test_burst_exactly_at_capacity(self):
        """Exactly ``burst`` takes succeed at one instant, never more."""
        bucket = TokenBucket(1.0, 4)
        assert all(bucket.try_take(0.0) for _ in range(4))
        assert not bucket.try_take(0.0)

    def test_refill_caps_at_burst_across_clock_jump(self):
        """An arbitrarily large jump refills to ``burst``, not beyond."""
        bucket = TokenBucket(5.0, 3)
        for _ in range(3):
            assert bucket.try_take(0.0)
        assert bucket.tokens_at(1e9) == pytest.approx(3.0)
        for _ in range(3):
            assert bucket.try_take(1e9)
        assert not bucket.try_take(1e9)

    def test_fractional_refill_is_exact(self):
        """A token appears exactly when ``rate * dt`` reaches 1."""
        bucket = TokenBucket(2.0, 1)
        assert bucket.try_take(0.0)
        assert not bucket.try_take(0.49)  # 0.98 tokens
        assert bucket.try_take(0.5)       # exactly 1.0

    def test_backwards_clock_refills_nothing(self):
        bucket = TokenBucket(1000.0, 1)
        assert bucket.try_take(1.0)
        assert not bucket.try_take(0.0)

    def test_tokens_at_is_inspection_only(self):
        bucket = TokenBucket(1.0, 2)
        assert bucket.tokens_at(0.0) == pytest.approx(2.0)
        assert bucket.tokens_at(0.0) == pytest.approx(2.0)


class TestControllerEdges:
    def test_zero_queue_capacity_is_typed(self):
        with pytest.raises(UserInputError):
            AdmissionController(0)

    def test_queue_depth_at_limit_sheds(self):
        ctl = AdmissionController(2)
        ctl.admit(JOB, 0, 0.0)
        ctl.admit(JOB, 1, 0.0)
        with pytest.raises(FleetOverloadError) as exc:
            ctl.admit(JOB, 2, 0.0)
        assert exc.value.reason == "queue-depth"
        assert ctl.stats.shed_queue_depth == 1
        assert ctl.stats.admitted == 2

    def test_global_burst_exactly_at_capacity(self):
        ctl = AdmissionController(
            99, rate_limit_jobs_per_second=1.0, rate_limit_burst=2
        )
        ctl.admit(JOB, 0, 0.0)
        ctl.admit(JOB, 0, 0.0)
        with pytest.raises(FleetOverloadError) as exc:
            ctl.admit(JOB, 0, 0.0)
        assert exc.value.reason == "rate-limit"
        assert ctl.stats.shed_rate_limit == 1

    def test_refill_across_virtual_clock_jumps(self):
        """Burst 1 at 0.5 jobs/s: the next token lands exactly at t=2."""
        ctl = AdmissionController(
            99, rate_limit_jobs_per_second=0.5, rate_limit_burst=1
        )
        ctl.admit(JOB, 0, 0.0)
        with pytest.raises(FleetOverloadError):
            ctl.admit(JOB, 0, 1.9)
        ctl.admit(JOB, 0, 2.0)
        # A long idle gap refills to the burst cap only: one admit
        # succeeds, the second sheds again.
        ctl.admit(JOB, 0, 1e6)
        with pytest.raises(FleetOverloadError):
            ctl.admit(JOB, 0, 1e6)


class TestTenantBuckets:
    def _controller(self, **kwargs):
        defaults = dict(
            max_queue_depth=99,
            rate_limit_jobs_per_second=100.0,
            rate_limit_burst=100,
        )
        defaults.update(kwargs)
        return AdmissionController(**defaults)

    def test_register_requires_a_name(self):
        ctl = self._controller()
        with pytest.raises(UserInputError):
            ctl.register_tenant("", 1.0)

    def test_tenant_over_quota_is_typed_and_charges_nothing(self):
        ctl = self._controller()
        ctl.register_tenant("acme", 1.0, burst=1)
        ctl.admit(JOB, 0, 0.0, tenant="acme")
        global_before = ctl.bucket.tokens_at(0.0)
        with pytest.raises(TenantQuotaExceededError) as exc:
            ctl.admit(JOB, 0, 0.0, tenant="acme")
        assert exc.value.tenant == "acme"
        assert exc.value.reason == "tenant-rate"
        # The 429 subclasses the fleet's overload error, so the typed
        # shedding machinery handles it unchanged.
        assert isinstance(exc.value, FleetOverloadError)
        # Peek-then-take: the rejection burned no fleet-wide token.
        assert ctl.bucket.tokens_at(0.0) == pytest.approx(global_before)
        assert ctl.stats.shed_tenant_quota == 1

    def test_global_rejection_charges_no_tenant_token(self):
        ctl = self._controller(
            rate_limit_jobs_per_second=1.0, rate_limit_burst=1
        )
        ctl.register_tenant("acme", 100.0, burst=100)
        ctl.admit(JOB, 0, 0.0, tenant="acme")
        tenant_before = ctl.tenant_buckets["acme"].tokens_at(0.0)
        with pytest.raises(FleetOverloadError) as exc:
            ctl.admit(JOB, 0, 0.0, tenant="acme")
        assert not isinstance(exc.value, TenantQuotaExceededError)
        assert exc.value.reason == "rate-limit"
        assert ctl.tenant_buckets["acme"].tokens_at(0.0) == pytest.approx(
            tenant_before
        )

    def test_acceptance_charges_both_buckets_once(self):
        ctl = self._controller()
        ctl.register_tenant("acme", 10.0, burst=5)
        ctl.admit(JOB, 0, 0.0, tenant="acme")
        assert ctl.tenant_buckets["acme"].tokens_at(0.0) == pytest.approx(4.0)
        assert ctl.bucket.tokens_at(0.0) == pytest.approx(99.0)

    def test_unregistering_makes_a_tenant_unmetered(self):
        ctl = self._controller()
        ctl.register_tenant("acme", 1.0, burst=1)
        ctl.admit(JOB, 0, 0.0, tenant="acme")
        ctl.register_tenant("acme", None)
        for _ in range(5):  # no tenant bucket left to shed on
            ctl.admit(JOB, 0, 0.0, tenant="acme")

    def test_unknown_tenant_uses_only_the_global_bucket(self):
        ctl = self._controller(
            rate_limit_jobs_per_second=1.0, rate_limit_burst=1
        )
        ctl.admit(JOB, 0, 0.0, tenant="stranger")
        with pytest.raises(FleetOverloadError) as exc:
            ctl.admit(JOB, 0, 0.0, tenant="stranger")
        assert exc.value.reason == "rate-limit"

    def test_two_tenants_do_not_share_tokens(self):
        ctl = self._controller()
        ctl.register_tenant("a", 1.0, burst=1)
        ctl.register_tenant("b", 1.0, burst=1)
        ctl.admit(JOB, 0, 0.0, tenant="a")
        with pytest.raises(TenantQuotaExceededError):
            ctl.admit(JOB, 0, 0.0, tenant="a")
        ctl.admit(JOB, 0, 0.0, tenant="b")  # b's bucket is untouched

    def test_stats_dict_includes_tenant_sheds(self):
        ctl = self._controller()
        ctl.register_tenant("acme", 1.0, burst=1)
        ctl.admit(JOB, 0, 0.0, tenant="acme")
        with pytest.raises(TenantQuotaExceededError):
            ctl.admit(JOB, 0, 0.0, tenant="acme")
        stats = ctl.stats.to_dict()
        assert stats["submitted"] == 2
        assert stats["admitted"] == 1
        assert stats["shed_tenant_quota"] == 1
