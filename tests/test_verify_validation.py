"""Tests for the self-check harness and the model-validation matrix."""

import numpy as np
import pytest

from repro.arch.config import PipelineConfig
from repro.model.validation import (
    ErrorStats,
    aggregate,
    validate_model_on_graph,
    validation_matrix,
)
from repro.verify import _same_partition


class TestSamePartition:
    def test_identical(self):
        a = np.array([0, 0, 1, 2])
        assert _same_partition(a, a.copy())

    def test_relabelled_equivalent(self):
        a = np.array([0, 0, 1, 2])
        b = np.array([7, 7, 3, 9])
        assert _same_partition(a, b)

    def test_merged_groups_differ(self):
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 0, 0, 0])
        assert not _same_partition(a, b)

    def test_split_groups_differ(self):
        a = np.array([0, 0, 0])
        b = np.array([0, 1, 1])
        assert not _same_partition(a, b)

    def test_shape_mismatch(self):
        assert not _same_partition(np.zeros(3), np.zeros(4))


class TestModelValidation:
    @pytest.fixture(scope="class")
    def stats(self, small_rmat):
        config = PipelineConfig(gather_buffer_vertices=512)
        return validate_model_on_graph(small_rmat, config)

    def test_two_kinds_reported(self, stats):
        assert {s.kind for s in stats} == {"little", "big"}

    def test_error_bands(self, stats):
        """Mean errors stay in the neighbourhood of the paper's 4%/6%."""
        for s in stats:
            assert s.mean < 0.12, s

    def test_p95_at_least_mean(self, stats):
        for s in stats:
            assert s.p95 >= s.mean - 1e-12

    def test_counts_positive(self, stats):
        for s in stats:
            assert s.count > 0

    def test_empty_samples(self):
        s = ErrorStats.from_samples("little", np.zeros(0), np.zeros(0))
        assert s.count == 0 and s.mean == 0.0

    def test_aggregate_pools_counts(self, stats):
        pooled = aggregate(stats + stats, "little")
        single = [s for s in stats if s.kind == "little"][0]
        assert pooled.count == 2 * single.count
        assert pooled.mean == pytest.approx(single.mean)

    def test_aggregate_empty_kind(self):
        assert aggregate([], "big").count == 0


class TestValidationMatrix:
    def test_matrix_covers_skew_classes(self):
        config = PipelineConfig(gather_buffer_vertices=512)
        stats = validation_matrix(config, seeds=1)
        # 3 graphs x 2 kinds.
        assert len(stats) == 6
        pooled_little = aggregate(stats, "little")
        pooled_big = aggregate(stats, "big")
        assert pooled_little.mean < 0.15
        assert pooled_big.mean < 0.15
