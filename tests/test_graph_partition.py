"""Tests for destination-interval partitioning."""

import numpy as np
import pytest

from repro.graph.partition import partition_graph


class TestPartitionGraph:
    def test_partition_count(self, tiny_graph):
        pset = partition_graph(tiny_graph, 3)
        assert pset.num_partitions == 2  # ceil(6 / 3)

    def test_fig1_example_edges(self, tiny_graph):
        # Fig. 1c: partition 0 owns dst 0..2, partition 1 owns dst 3..5.
        pset = partition_graph(tiny_graph, 3)
        p0, p1 = pset.partitions
        assert np.all(p0.dst < 3)
        assert np.all(p1.dst >= 3)
        assert p0.num_edges + p1.num_edges == 8

    def test_edges_preserved(self, small_rmat):
        pset = partition_graph(small_rmat, 512)
        assert pset.total_edges() == small_rmat.num_edges

    def test_ascending_source_invariant(self, small_rmat):
        pset = partition_graph(small_rmat, 512)
        for p in pset.partitions:
            assert np.all(np.diff(p.src) >= 0)

    def test_dst_within_interval(self, small_rmat):
        pset = partition_graph(small_rmat, 512)
        for p in pset.partitions:
            if p.num_edges:
                assert p.dst.min() >= p.vertex_lo
                assert p.dst.max() < p.vertex_hi

    def test_last_partition_truncated(self):
        from repro.graph.generators import erdos_renyi_graph

        g = erdos_renyi_graph(1000, 5000, seed=0)
        pset = partition_graph(g, 300)
        assert pset.partitions[-1].num_dst_vertices == 100

    def test_nonempty_filter(self, tiny_graph):
        pset = partition_graph(tiny_graph, 3)
        assert len(pset.nonempty()) == 2

    def test_invalid_interval_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            partition_graph(tiny_graph, 0)

    def test_weights_partitioned(self, tiny_graph):
        g = tiny_graph.with_weights(np.arange(8))
        pset = partition_graph(g, 3)
        total = sum(p.weights.sum() for p in pset.partitions)
        assert total == np.arange(8).sum()


class TestPartitionAccessors:
    def test_src_blocks(self, small_rmat):
        pset = partition_graph(small_rmat, 512)
        p = pset.nonempty()[0]
        np.testing.assert_array_equal(p.src_blocks(16), p.src // 16)

    def test_unique_src_count(self, tiny_graph):
        pset = partition_graph(tiny_graph, 3)
        p0 = pset.partitions[0]
        assert p0.unique_src_count() == len(set(p0.src.tolist()))

    def test_src_span_blocks_empty(self, tiny_graph):
        pset = partition_graph(tiny_graph, 3)
        empty = pset.partitions[0].slice(0, 0)
        assert empty.src_span_blocks(16) == 0

    def test_span_at_least_unique_blocks(self, small_rmat):
        pset = partition_graph(small_rmat, 512)
        for p in pset.nonempty()[:5]:
            unique_blocks = len(np.unique(p.src_blocks(16)))
            assert p.src_span_blocks(16) >= unique_blocks


class TestSlice:
    def test_slice_edges(self, small_rmat):
        pset = partition_graph(small_rmat, 512)
        p = pset.nonempty()[0]
        sub = p.slice(10, 20)
        assert sub.num_edges == 10
        np.testing.assert_array_equal(sub.src, p.src[10:20])

    def test_slice_keeps_interval(self, small_rmat):
        pset = partition_graph(small_rmat, 512)
        p = pset.nonempty()[0]
        sub = p.slice(0, 5)
        assert (sub.vertex_lo, sub.vertex_hi) == (p.vertex_lo, p.vertex_hi)

    def test_slices_cover_partition(self, small_rmat):
        pset = partition_graph(small_rmat, 512)
        p = pset.nonempty()[0]
        mid = p.num_edges // 2
        a, b = p.slice(0, mid), p.slice(mid, p.num_edges)
        assert a.num_edges + b.num_edges == p.num_edges
