"""Property tests for the incremental re-simulation layer.

Two invariants, each pinned by hypothesis over random scheduling plans:

* **Minimality** — every mutation's recorded dirty set is exactly the
  blast radius the compiled structure implies: one node for a task swap,
  one pipeline's non-empty nodes for a fault site, every non-empty node
  for a channel-parameter switch, and the empty set for no-op mutations.
  Untouched nodes keep *object identity*, the strongest possible "was
  not recomputed" witness.
* **Bit-identity** — after any mutation sequence, the incrementally
  maintained timings equal a cold :meth:`full_evaluation` under the
  final state, element for element.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiled import IncrementalEvaluator
from repro.hbm.channel import HbmTimingParams

from tests.strategies import channel_param_perturbations, scheduling_plans


def node_rows(evaluator):
    """(kind, pipeline, tasks) rows that actually hold tasks."""
    rows = []
    for pipe, row in enumerate(evaluator.cplan.little_by_pipe):
        if row:
            rows.append(("little", pipe, row))
    for pipe, row in enumerate(evaluator.cplan.big_by_pipe):
        if row:
            rows.append(("big", pipe, row))
    return rows


def assert_matches_cold(evaluator):
    cold = evaluator.full_evaluation()
    assert len(cold) == len(evaluator.timings)
    for incremental, full in zip(evaluator.timings, cold):
        assert incremental == full


class TestChannelParamMutation:
    @given(gp=scheduling_plans(), params=channel_param_perturbations())
    @settings(max_examples=20, deadline=None)
    def test_dirty_set_is_non_empty_nodes_and_result_is_cold(
        self, gp, params
    ):
        _graph, plan = gp
        inc = IncrementalEvaluator(plan)
        before = list(inc.timings)
        dirty = inc.set_channel_params(params)
        expected = frozenset(
            n.index for n in inc.cplan.nodes if n.num_edges
        )
        assert dirty == inc.last_dirty == expected
        # Empty nodes were not recomputed: same objects as before.
        for node in inc.cplan.nodes:
            if not node.num_edges:
                assert inc.timings[node.index] is before[node.index]
        assert_matches_cold(inc)

    @given(gp=scheduling_plans())
    @settings(max_examples=10, deadline=None)
    def test_same_params_is_a_noop(self, gp):
        _graph, plan = gp
        inc = IncrementalEvaluator(plan)
        before = list(inc.timings)
        assert inc.set_channel_params(HbmTimingParams()) == frozenset()
        assert all(a is b for a, b in zip(inc.timings, before))


class TestTaskReplacement:
    @given(
        gp=scheduling_plans(),
        row_seed=st.integers(0, 2**30),
    )
    @settings(max_examples=20, deadline=None)
    def test_dirty_set_is_exactly_one_node(self, gp, row_seed):
        _graph, plan = gp
        inc = IncrementalEvaluator(plan)
        rows = node_rows(inc)
        kind, pipe, row = rows[row_seed % len(rows)]
        order = row_seed % len(row)
        tasks = (
            plan.little_tasks if kind == "little" else plan.big_tasks
        )[pipe]
        # Re-lowering the same task is the sharpest minimality probe:
        # the dirty set must still be that single node, and the result
        # must stay bit-identical to the cold oracle.
        before = list(inc.timings)
        target = row[order].index
        dirty = inc.replace_task(kind, pipe, order, tasks[order])
        assert row[order].index == target  # index survives re-lowering
        assert dirty == frozenset((target,))
        for index, timing in enumerate(before):
            if index != target:
                assert inc.timings[index] is timing
        assert_matches_cold(inc)


class TestFaultSiteMutation:
    @given(
        gp=scheduling_plans(),
        row_seed=st.integers(0, 2**30),
        scale=st.floats(1.5, 16.0, allow_nan=False),
    )
    @settings(max_examples=20, deadline=None)
    def test_dirty_set_is_one_pipelines_nodes(self, gp, row_seed, scale):
        _graph, plan = gp
        inc = IncrementalEvaluator(plan)
        rows = node_rows(inc)
        kind, pipe, _row = rows[row_seed % len(rows)]
        before = list(inc.timings)
        dirty = inc.set_fault(kind, pipe, scale)
        expected = frozenset(
            n.index
            for n in inc.cplan.nodes
            if n.num_edges and (n.kind, n.pipeline) == (kind, pipe)
        )
        assert dirty == expected
        for index, timing in enumerate(before):
            if index not in expected:
                assert inc.timings[index] is timing
        assert_matches_cold(inc)

    @given(
        gp=scheduling_plans(),
        row_seed=st.integers(0, 2**30),
        scale=st.floats(1.5, 16.0, allow_nan=False),
    )
    @settings(max_examples=15, deadline=None)
    def test_clearing_a_fault_restores_clean_timings(
        self, gp, row_seed, scale
    ):
        _graph, plan = gp
        inc = IncrementalEvaluator(plan)
        clean = list(inc.timings)
        rows = node_rows(inc)
        kind, pipe, _row = rows[row_seed % len(rows)]
        set_dirty = inc.set_fault(kind, pipe, scale)
        clear_dirty = inc.set_fault(kind, pipe, 1.0)
        assert clear_dirty == set_dirty
        assert not inc.fault_scales
        assert inc.timings == clean
        # Re-setting an identical scale is a no-op.
        inc.set_fault(kind, pipe, scale)
        assert inc.set_fault(kind, pipe, scale) == frozenset()


class TestMutationSequences:
    @given(
        gp=scheduling_plans(),
        params=channel_param_perturbations(),
        row_seed=st.integers(0, 2**30),
        scale=st.floats(1.5, 16.0, allow_nan=False),
    )
    @settings(max_examples=15, deadline=None)
    def test_interleaved_mutations_stay_bit_identical_to_cold(
        self, gp, params, row_seed, scale
    ):
        _graph, plan = gp
        inc = IncrementalEvaluator(plan)
        rows = node_rows(inc)
        kind, pipe, row = rows[row_seed % len(rows)]
        order = row_seed % len(row)
        tasks = (
            plan.little_tasks if kind == "little" else plan.big_tasks
        )[pipe]
        inc.set_fault(kind, pipe, scale)
        inc.set_channel_params(params)
        inc.replace_task(kind, pipe, order, tasks[order])
        assert_matches_cold(inc)
        little, big = inc.busy_cycles()
        assert len(little) == len(inc.cplan.little_by_pipe)
        assert len(big) == len(inc.cplan.big_by_pipe)

    def test_busy_cycles_match_engine_on_clean_state(self):
        from repro.compiled import plan_engine
        from repro.graph.generators import rmat_graph
        from repro.hbm.channel import HbmChannelModel

        from tests.helpers import make_framework

        framework = make_framework()
        pre = framework.preprocess(rmat_graph(9, 8, seed=4))
        inc = IncrementalEvaluator(pre.plan)
        channel = HbmChannelModel()
        engine_little, engine_big = plan_engine(pre.plan).busy_cycles(
            channel
        )
        little, big = inc.busy_cycles()
        assert little == engine_little
        assert big == engine_big


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
