"""Tests for the text-table reporting helpers."""

from repro.reporting import format_table, write_report


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        pipe_cols = {
            line.index("|") for line in lines if "|" in line
        }
        plus_cols = {line.index("+") for line in lines if "+" in line}
        assert len(pipe_cols) == 1
        assert plus_cols == {next(iter(pipe_cols))}

    def test_title_first_line(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456], [12.3456], [1234.56]])
        assert "0.123" in text
        assert "12.35" in text
        assert "1235" in text

    def test_zero(self):
        assert "0" in format_table(["v"], [[0.0]])

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestWriteReport:
    def test_writes_file(self, tmp_path, capsys):
        path = write_report("demo", "hello table", directory=tmp_path)
        assert path.read_text() == "hello table\n"
        assert "hello table" in capsys.readouterr().out

    def test_default_directory_is_benchmarks_results(self, capsys):
        path = write_report("smoke_report_test", "x")
        try:
            assert path.parent.name == "results"
            assert path.parent.parent.name == "benchmarks"
        finally:
            path.unlink()
