"""Shared fixtures: small graphs, channel/config instances, models.

Fixtures are session-scoped where construction is deterministic and
read-only, keeping the few-hundred-test suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.config import PipelineConfig
from repro.graph.coo import Graph
from repro.graph.generators import erdos_renyi_graph, power_law_graph, rmat_graph
from repro.graph.partition import partition_graph
from repro.graph.reorder import degree_based_grouping
from repro.hbm.channel import HbmChannelModel
from repro.model.calibrate import calibrate_performance_model

#: Buffer size small enough that test graphs produce many partitions.
TEST_BUFFER_VERTICES = 512


@pytest.fixture(scope="session")
def channel():
    """Default HBM channel timing model."""
    return HbmChannelModel()

@pytest.fixture(scope="session")
def config():
    """Pipeline configuration with a test-sized gather buffer."""
    return PipelineConfig(gather_buffer_vertices=TEST_BUFFER_VERTICES)


@pytest.fixture(scope="session")
def perf_model(config, channel):
    """Calibrated analytic performance model."""
    return calibrate_performance_model(config, channel)


@pytest.fixture(scope="session")
def tiny_graph():
    """The Fig. 1 example graph: 6 vertices, 8 edges, hand-built."""
    src = [0, 0, 1, 2, 3, 4, 4, 5]
    dst = [1, 3, 2, 0, 4, 2, 5, 0]
    return Graph(6, src, dst, name="fig1")


@pytest.fixture(scope="session")
def small_rmat():
    """An 8K-vertex RMAT graph with strong skew (16 test partitions)."""
    return rmat_graph(13, 16, seed=7, name="rmat13")


@pytest.fixture(scope="session")
def small_powerlaw():
    """A power-law graph resembling a web crawl."""
    return power_law_graph(4000, 40_000, exponent=1.8, seed=11, name="pl4k")


@pytest.fixture(scope="session")
def small_uniform():
    """A uniform random graph (no skew) as control."""
    return erdos_renyi_graph(2000, 20_000, seed=5, name="er2k")


@pytest.fixture(scope="session")
def dbg_rmat(small_rmat):
    """DBG-reordered RMAT graph."""
    return degree_based_grouping(small_rmat)


@pytest.fixture(scope="session")
def rmat_partitions(dbg_rmat, config):
    """Partition set of the reordered RMAT graph at test buffer size."""
    return partition_graph(dbg_rmat.graph, config.partition_vertices)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
