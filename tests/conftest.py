"""Shared fixtures: small graphs, channel/config instances, models.

Fixtures are session-scoped where construction is deterministic and
read-only, keeping the few-hundred-test suite fast.  Graph/device setup
lives in :mod:`tests.helpers` (shared with the benchmark suite);
hypothesis strategies live in :mod:`tests.strategies`.

Markers: every test is ``tier1`` unless marked ``slow`` — ``pytest -m
tier1`` is the fast verification suite, ``pytest -m slow`` the heavy
property suite (its own CI job).  Set ``HYPOTHESIS_PROFILE=ci`` for the
derandomized, reproducible profile the conformance job uses.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.check import ConformanceChecker
from repro.graph.generators import (
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
)
from repro.graph.partition import partition_graph
from repro.graph.reorder import degree_based_grouping
from repro.hbm.channel import HbmChannelModel
from repro.model.calibrate import calibrate_performance_model

from tests.helpers import (
    TEST_BUFFER_VERTICES,
    fig1_graph,
    make_pipeline_config,
)

# Reproducible hypothesis runs: the ci profile is derandomized and
# prints the failing example blob so any failure replays exactly.
settings.register_profile("ci", derandomize=True, print_blob=True)
settings.register_profile("dev", print_blob=True)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_collection_modifyitems(config, items):
    """Everything not marked ``slow`` is the tier-1 fast suite."""
    for item in items:
        if "slow" not in item.keywords:
            item.add_marker(pytest.mark.tier1)


@pytest.fixture(scope="session")
def channel():
    """Default HBM channel timing model."""
    return HbmChannelModel()

@pytest.fixture(scope="session")
def config():
    """Pipeline configuration with a test-sized gather buffer."""
    return make_pipeline_config(TEST_BUFFER_VERTICES)


@pytest.fixture(scope="session")
def perf_model(config, channel):
    """Calibrated analytic performance model."""
    return calibrate_performance_model(config, channel)


@pytest.fixture(scope="session")
def tiny_graph():
    """The Fig. 1 example graph: 6 vertices, 8 edges, hand-built."""
    return fig1_graph()


@pytest.fixture(scope="session")
def small_rmat():
    """An 8K-vertex RMAT graph with strong skew (16 test partitions)."""
    return rmat_graph(13, 16, seed=7, name="rmat13")


@pytest.fixture(scope="session")
def small_powerlaw():
    """A power-law graph resembling a web crawl."""
    return power_law_graph(4000, 40_000, exponent=1.8, seed=11, name="pl4k")


@pytest.fixture(scope="session")
def small_uniform():
    """A uniform random graph (no skew) as control."""
    return erdos_renyi_graph(2000, 20_000, seed=5, name="er2k")


@pytest.fixture(scope="session")
def dbg_rmat(small_rmat):
    """DBG-reordered RMAT graph."""
    return degree_based_grouping(small_rmat)


@pytest.fixture(scope="session")
def rmat_partitions(dbg_rmat, config):
    """Partition set of the reordered RMAT graph at test buffer size."""
    return partition_graph(dbg_rmat.graph, config.partition_vertices)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def conformance():
    """Opt-in invariant enforcement for integration tests.

    Call ``conformance.check_run(pre, framework)`` after any end-to-end
    run to assert trace invariants, resource budgets and model
    agreement on top of the test's own expectations.
    """
    return ConformanceChecker()
