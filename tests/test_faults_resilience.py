"""Fault-injection framework and resilient runtime: unit tests.

Integration-level fault scenarios (dead channel mid-run, degradation
correctness against the NumPy references) live in
``test_integration_u50_robustness.py``; this module covers the building
blocks — fault plans, checkpoints, watchdog/backoff arithmetic, the
error hierarchy, zero-fault parity and seed determinism — plus the
``faultsim`` CLI surface.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import PipelineConfig
from repro.cli import main
from repro.core.framework import ReGraph
from repro.errors import (
    AcceleratorReleasedError,
    ChannelFaultError,
    DataCorruptionError,
    DeviceOutOfMemoryError,
    FaultInjectedError,
    PipelineStallError,
    ReproError,
    ResilienceExhaustedError,
    UserInputError,
    WatchdogTimeoutError,
)
from repro.faults import (
    BitFlipFault,
    CheckpointDiscardWarning,
    CheckpointStore,
    CircuitBreakerBank,
    DeadChannelFault,
    FaultInjector,
    FaultPlan,
    LatencySpikeFault,
    PipelineStallFault,
    ResiliencePolicy,
    RunHealthReport,
)


@pytest.fixture(scope="module")
def framework():
    return ReGraph(
        "U50",
        pipeline=PipelineConfig(gather_buffer_vertices=256),
        num_pipelines=6,
    )


@pytest.fixture(scope="module")
def pre(framework, small_powerlaw):
    return framework.preprocess(small_powerlaw)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_empty_by_default(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(
            bit_flips=(BitFlipFault(probability=0.1),)
        ).is_empty

    def test_dict_round_trip(self):
        plan = FaultPlan(
            seed=42,
            dead_channels=(DeadChannelFault(channel=3, onset_cycle=10.0),),
            latency_spikes=(LatencySpikeFault(
                channel=1, onset_cycle=5.0,
                duration_cycles=99.0, multiplier=4.0,
            ),),
            bit_flips=(BitFlipFault(probability=0.25, detectable=False),),
            stalls=(PipelineStallFault(probability=0.5, pipeline=2),),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_defaults(self):
        assert FaultPlan.from_dict({}) == FaultPlan()


# ----------------------------------------------------------------------
# Error hierarchy
# ----------------------------------------------------------------------
class TestErrorHierarchy:
    def test_fault_errors_are_repro_errors(self):
        for cls in (ChannelFaultError, PipelineStallError,
                    DataCorruptionError, WatchdogTimeoutError):
            assert issubclass(cls, FaultInjectedError)
            assert issubclass(cls, ReproError)

    def test_builtin_bases_preserved(self):
        # Callers that guarded with builtin exception types keep working.
        assert issubclass(AcceleratorReleasedError, RuntimeError)
        assert issubclass(DeviceOutOfMemoryError, MemoryError)
        assert issubclass(UserInputError, ValueError)

    def test_categories(self):
        assert ChannelFaultError(0, ("little", 0)).category == "dead-channel"
        assert DataCorruptionError("x").category == "bit-flip"
        assert PipelineStallError("x").category == "pipeline-stall"
        err = WatchdogTimeoutError(200.0, 100.0, victim=("big", 0))
        assert err.category == "watchdog-timeout"
        assert err.measured_cycles == 200.0 and err.victim == ("big", 0)


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_save_restore_round_trip(self):
        store = CheckpointStore(keep=2)
        props = np.arange(8, dtype=np.float64)
        store.save(3, props, 123.0)
        props[:] = -1.0  # the snapshot must be an independent copy
        cp = store.restore()
        assert cp.iteration == 3 and cp.total_cycles == 123.0
        np.testing.assert_array_equal(cp.props, np.arange(8))
        assert store.saves == 1 and store.restores == 1

    def test_keeps_only_recent(self):
        store = CheckpointStore(keep=2)
        for i in range(5):
            store.save(i, np.full(2, float(i)), float(i))
        assert store.latest().iteration == 4
        assert len(store._stack) == 2

    def test_restore_empty_raises(self):
        with pytest.raises(ResilienceExhaustedError):
            CheckpointStore().restore()

    def test_file_round_trip(self, tmp_path):
        store = CheckpointStore()
        store.save(7, np.linspace(0, 1, 5), 99.5)
        path = store.to_file(tmp_path / "ckpt.npz")
        cp = CheckpointStore.from_file(path)
        assert cp.iteration == 7 and cp.total_cycles == 99.5
        np.testing.assert_allclose(cp.props, np.linspace(0, 1, 5))

    def test_keep_bounds_memory_for_any_keep(self):
        for keep in (1, 3):
            store = CheckpointStore(keep=keep)
            for i in range(10):
                store.save(i, np.array([float(i)]), float(i))
            assert len(store._stack) == keep
            # Pruning drops the oldest, never the newest.
            assert store.latest().iteration == 9
            assert store._stack[0].iteration == 10 - keep

    def test_file_round_trip_is_bit_exact(self, tmp_path):
        # Awkward irrational values: any lossy serialisation would show.
        rng = np.random.default_rng(3)
        props = np.sqrt(rng.random(64, dtype=np.float64)) * 1e-17
        store = CheckpointStore()
        store.save(12, props, 1234.5678)
        cp = CheckpointStore.from_file(store.to_file(tmp_path / "c.npz"))
        assert cp.iteration == 12
        assert cp.total_cycles == 1234.5678
        assert cp.props.dtype == props.dtype
        assert cp.props.tobytes() == props.tobytes()

    def test_restore_empty_message_names_the_problem(self):
        with pytest.raises(ResilienceExhaustedError, match="checkpoint"):
            CheckpointStore().restore()


class TestCrashSafeCheckpoints:
    """Atomic persistence: a worker dying mid-save can never leave a
    torn archive under the final name, and restore paths skip torn
    files instead of crashing on them."""

    def _saved(self, tmp_path, iteration=5, name="ckpt.npz"):
        store = CheckpointStore()
        store.save(iteration, np.arange(4, dtype=np.float64), 10.0)
        return store.to_file(tmp_path / name)

    def test_no_staging_file_survives_a_save(self, tmp_path):
        path = self._saved(tmp_path)
        leftovers = [
            p for p in tmp_path.iterdir() if p.name != path.name
        ]
        assert leftovers == []

    def test_truncated_file_is_skipped_on_restore(self, tmp_path):
        path = self._saved(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn mid-write
        assert CheckpointStore.from_file(path, strict=False) is None

    def test_truncated_file_raises_when_strict(self, tmp_path):
        path = self._saved(tmp_path)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(Exception):
            CheckpointStore.from_file(path)

    def test_garbage_file_is_skipped(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not an archive at all")
        assert CheckpointStore.from_file(path, strict=False) is None

    def test_empty_file_is_skipped(self, tmp_path):
        path = tmp_path / "empty.npz"
        path.touch()
        assert CheckpointStore.from_file(path, strict=False) is None

    def test_from_directory_prefers_newest_valid(self, tmp_path):
        self._saved(tmp_path, iteration=3, name="a.npz")
        newest = self._saved(tmp_path, iteration=9, name="b.npz")
        # Tear the newest-by-name file too: it must be skipped.
        torn = self._saved(tmp_path, iteration=99, name="z.npz")
        torn.write_bytes(torn.read_bytes()[:20])
        assert newest.exists()
        cp = CheckpointStore.from_directory(tmp_path)
        assert cp is not None and cp.iteration == 9

    def test_from_directory_empty_returns_none(self, tmp_path):
        assert CheckpointStore.from_directory(tmp_path) is None

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        first = self._saved(tmp_path, iteration=1)
        second = self._saved(tmp_path, iteration=2)
        assert first == second
        cp = CheckpointStore.from_file(second)
        assert cp.iteration == 2


class TestCheckpointChecksums:
    """Persisted checkpoints carry a payload checksum: bit rot inside a
    structurally valid archive is detected, discarded loudly (a
    structured warning), and counted in the run's health report."""

    def _saved(self, tmp_path):
        store = CheckpointStore()
        store.save(4, np.arange(6, dtype=np.float64), 50.0)
        return store.to_file(tmp_path / "ckpt.npz")

    def _tampered(self, tmp_path):
        """A valid archive whose props no longer hash to its checksum."""
        path = self._saved(tmp_path)
        with np.load(path) as data:
            stored = str(data["checksum"])
            props = np.array(data["props"])
            iteration = int(data["iteration"])
            cycles = float(data["total_cycles"])
        props[0] += 1.0  # the silent flip a zip-level CRC can miss
        np.savez(path, iteration=iteration, props=props,
                 total_cycles=cycles, checksum=np.array(stored))
        return path

    def test_strict_load_names_the_mismatch(self, tmp_path):
        path = self._tampered(tmp_path)
        with pytest.raises(ValueError, match="checksum mismatch"):
            CheckpointStore.from_file(path)

    def test_lenient_load_warns_and_counts(self, tmp_path):
        path = self._tampered(tmp_path)
        health = RunHealthReport()
        with pytest.warns(CheckpointDiscardWarning) as caught:
            cp = CheckpointStore.from_file(
                path, strict=False, health=health
            )
        assert cp is None
        assert health.checkpoints_discarded == 1
        warning = caught[0].message
        assert warning.path == str(path)
        assert "checksum" in warning.reason

    def test_discards_enter_the_serialized_report(self, tmp_path):
        health = RunHealthReport()
        with pytest.warns(CheckpointDiscardWarning):
            CheckpointStore.from_directory(
                self._tampered(tmp_path).parent, health=health
            )
        assert health.to_dict()["checkpoints_discarded"] == 1

    def test_legacy_archive_without_checksum_loads(self, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez(path, iteration=2,
                 props=np.arange(3, dtype=np.float64), total_cycles=9.0)
        cp = CheckpointStore.from_file(path)
        assert cp is not None and cp.iteration == 2

    def test_intact_archive_verifies_clean(self, tmp_path):
        health = RunHealthReport()
        cp = CheckpointStore.from_file(
            self._saved(tmp_path), strict=False, health=health
        )
        assert cp is not None
        assert health.checkpoints_discarded == 0


# ----------------------------------------------------------------------
# Policy arithmetic
# ----------------------------------------------------------------------
class TestResiliencePolicy:
    def test_backoff_grows_exponentially(self):
        policy = ResiliencePolicy(
            backoff_base_cycles=100.0, backoff_factor=2.0
        )
        assert policy.backoff_cycles(1) == 100.0
        assert policy.backoff_cycles(2) == 200.0
        assert policy.backoff_cycles(3) == 400.0

    def test_watchdog_budget_floor(self):
        policy = ResiliencePolicy(
            watchdog_slack=4.0, watchdog_floor_cycles=1000.0
        )
        assert policy.watchdog_budget(500.0) == 3000.0
        assert policy.watchdog_budget(0.0) == 1000.0

    @pytest.mark.parametrize("kwargs,needle", [
        ({"max_retries": -1}, "max_retries"),
        ({"backoff_base_cycles": 0.0}, "backoff_base_cycles"),
        ({"backoff_base_cycles": -5.0}, "backoff_base_cycles"),
        ({"backoff_base_cycles": float("nan")}, "backoff_base_cycles"),
        ({"backoff_factor": 0.5}, "backoff_factor"),
        ({"backoff_factor": float("inf")}, "backoff_factor"),
        ({"watchdog_slack": 0.0}, "watchdog_slack"),
        ({"watchdog_slack": float("nan")}, "watchdog_slack"),
        ({"watchdog_slack": float("inf")}, "watchdog_slack"),
        ({"watchdog_floor_cycles": -1.0}, "watchdog_floor_cycles"),
        ({"checkpoint_interval": 0}, "checkpoint_interval"),
        ({"breaker_threshold": 0}, "breaker_threshold"),
    ])
    def test_invalid_fields_rejected_at_construction(self, kwargs, needle):
        with pytest.raises(UserInputError, match=needle):
            ResiliencePolicy(**kwargs)

    def test_boundary_values_accepted(self):
        # Edges of the valid ranges must construct fine.
        ResiliencePolicy(max_retries=0)
        ResiliencePolicy(backoff_factor=1.0)
        ResiliencePolicy(watchdog_floor_cycles=0.0)
        ResiliencePolicy(checkpoint_interval=1, breaker_threshold=1)

    def test_dict_round_trip(self):
        policy = ResiliencePolicy(
            max_retries=7, backoff_base_cycles=123.0, breaker_threshold=2
        )
        assert ResiliencePolicy.from_dict(policy.to_dict()) == policy


# ----------------------------------------------------------------------
# Circuit breakers
# ----------------------------------------------------------------------
class TestCircuitBreakerBank:
    def test_opens_at_threshold(self):
        bank = CircuitBreakerBank(threshold=3)
        assert not bank.record_failure(4, "pipeline-stall", 10.0)
        assert not bank.record_failure(4, "pipeline-stall", 20.0)
        assert bank.record_failure(4, "pipeline-stall", 30.0)  # 3rd opens
        assert bank.is_open(4)
        assert bank.trips == 1
        # Further failures keep it open without re-tripping.
        assert not bank.record_failure(4, "pipeline-stall", 40.0)
        assert bank.trips == 1

    def test_force_open_skips_the_count(self):
        bank = CircuitBreakerBank(threshold=5)
        assert bank.force_open(2, "dead-channel", 100.0)
        assert bank.is_open(2)
        state = bank.state(2)
        assert state.opened_at_cycle == 100.0
        assert state.last_category == "dead-channel"
        # Idempotent.
        assert not bank.force_open(2, "dead-channel", 200.0)
        assert bank.trips == 1

    def test_retirement_cycle(self):
        bank = CircuitBreakerBank(threshold=1)
        bank.record_failure(0, "pipeline-stall", 1.0)
        assert bank.open_unretired_channels() == [0]
        bank.mark_retired([0, 1])
        assert bank.open_unretired_channels() == []
        # A new run re-applies open breakers to the fresh topology.
        bank.reset_retired()
        assert bank.open_unretired_channels() == [0]

    def test_snapshot_covers_ensured_channels(self):
        bank = CircuitBreakerBank(threshold=2)
        bank.ensure(range(4))
        bank.record_failure(3, "bit-flip", 5.0)
        snap = bank.snapshot()
        assert sorted(snap) == ["0", "1", "2", "3"]
        assert snap["3"]["failures"] == 1
        assert snap["3"]["state"] == "closed"
        assert snap["0"]["state"] == "closed"

    def test_invalid_threshold_rejected(self):
        with pytest.raises(UserInputError):
            CircuitBreakerBank(threshold=0)


#: One breaker event: (channel, category, force) — force models a
#: permanent fault, everything else a counted transient.
_breaker_events = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.sampled_from(["pipeline-stall", "bit-flip", "dead-channel"]),
        st.booleans(),
    ),
    max_size=30,
)


def _apply_events(bank, events, start_cycle=0.0):
    """Drive a bank and record every externally visible decision."""
    decisions = []
    for i, (channel, category, force) in enumerate(events):
        cycle = start_cycle + float(i)
        if force:
            decisions.append(bank.force_open(channel, category, cycle))
        else:
            decisions.append(
                bank.record_failure(channel, category, cycle)
            )
    return decisions


class TestBreakerPersistence:
    """The fleet journal snapshots breaker banks via to_dict; recovery
    rebuilds them via from_dict.  The contract: a restored bank makes
    *identical* decisions to the original on any subsequent stream."""

    def test_dict_round_trip_is_complete(self):
        bank = CircuitBreakerBank(threshold=2)
        bank.record_failure(0, "bit-flip", 1.0)
        bank.record_failure(0, "bit-flip", 2.0)
        bank.force_open(3, "dead-channel", 5.0)
        bank.mark_retired([3])
        restored = CircuitBreakerBank.from_dict(bank.to_dict())
        assert restored.threshold == bank.threshold
        assert restored.trips == bank.trips
        assert restored.open_channels() == bank.open_channels()
        assert restored.open_unretired_channels() == \
            bank.open_unretired_channels()
        assert restored.snapshot() == bank.snapshot()

    def test_round_trip_survives_json(self):
        import json

        bank = CircuitBreakerBank(threshold=3)
        bank.record_failure(1, "pipeline-stall", 7.5)
        data = json.loads(json.dumps(bank.to_dict()))
        assert CircuitBreakerBank.from_dict(data).to_dict() == \
            bank.to_dict()

    @settings(max_examples=40, deadline=None)
    @given(history=_breaker_events, future=_breaker_events)
    def test_restored_bank_decides_identically(self, history, future):
        original = CircuitBreakerBank(threshold=3)
        _apply_events(original, history)
        restored = CircuitBreakerBank.from_dict(original.to_dict())
        assert _apply_events(restored, future, 1000.0) == \
            _apply_events(original, future, 1000.0)
        assert restored.to_dict() == original.to_dict()

    def test_restart_survival(self):
        """A breaker one failure from tripping keeps its count across a
        serialize/restore restart — the next failure opens it, exactly
        as it would have without the restart."""
        before = CircuitBreakerBank(threshold=3)
        before.record_failure(2, "bit-flip", 1.0)
        before.record_failure(2, "bit-flip", 2.0)
        after = CircuitBreakerBank.from_dict(before.to_dict())
        assert not after.is_open(2)
        assert after.record_failure(2, "bit-flip", 3.0)  # trips now
        assert after.open_channels() == [2]


# ----------------------------------------------------------------------
# Injector mechanics
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_channel_to_pipeline_mapping(self):
        inj = FaultInjector(FaultPlan())
        inj.bind_topology(num_little=4, num_big=2)
        assert inj._pipeline_of_channel(0) == ("little", 0)
        assert inj._pipeline_of_channel(7) == ("little", 3)
        assert inj._pipeline_of_channel(8) == ("big", 0)
        assert inj._pipeline_of_channel(11) == ("big", 1)
        assert inj._pipeline_of_channel(12) is None

    def test_dead_channel_raises_on_owner_only(self):
        inj = FaultInjector(FaultPlan(
            dead_channels=(DeadChannelFault(channel=2),)
        ))
        inj.bind_topology(num_little=2, num_big=1)
        inj.enter_pipeline("little", 0)
        inj.on_task("little")  # channel 2 belongs to little1, not little0
        inj.enter_pipeline("little", 1)
        with pytest.raises(ChannelFaultError) as exc:
            inj.on_task("little")
        assert exc.value.victim == ("little", 1)

    def test_retired_channel_stops_faulting(self):
        inj = FaultInjector(FaultPlan(
            dead_channels=(DeadChannelFault(channel=0),)
        ))
        inj.bind_topology(num_little=2, num_big=1)
        inj.retire_pipeline("little", 0)
        inj.bind_topology(num_little=1, num_big=1)
        assert not inj.timing_faults_active()
        inj.enter_pipeline("little", 0)
        inj.on_task("little")  # does not raise

    def test_spike_scales_only_in_window_and_context(self):
        inj = FaultInjector(FaultPlan(latency_spikes=(
            LatencySpikeFault(
                channel=0, onset_cycle=100.0,
                duration_cycles=50.0, multiplier=10.0,
            ),
        )))
        inj.bind_topology(num_little=1, num_big=0)
        inj.enter_pipeline("little", 0)
        inj.now = 120.0
        assert inj.scale_latency(24.0) == 240.0
        inj.now = 200.0  # window expired
        assert inj.scale_latency(24.0) == 24.0
        inj.now = 120.0
        inj.exit_pipeline()  # Apply/Writer context is unscoped
        assert inj.scale_latency(24.0) == 24.0

    def test_silent_flip_changes_one_bit(self):
        inj = FaultInjector(FaultPlan(
            seed=5,
            bit_flips=(BitFlipFault(probability=1.0, detectable=False),),
        ))
        buffer = np.zeros(16, dtype=np.float32)
        out = inj.filter_buffer(buffer)
        assert np.all(buffer == 0.0)  # input untouched
        assert np.count_nonzero(
            np.unpackbits(out.view(np.uint8) ^ buffer.view(np.uint8))
        ) == 1

    def test_detectable_flip_raises(self):
        inj = FaultInjector(FaultPlan(
            bit_flips=(BitFlipFault(probability=1.0),)
        ))
        with pytest.raises(DataCorruptionError):
            inj.filter_buffer(np.ones(4))


# ----------------------------------------------------------------------
# Resilient execution through the framework
# ----------------------------------------------------------------------
class TestResilientRuns:
    def test_zero_fault_plan_is_free(self, framework, pre):
        base = framework.run_pagerank(pre, max_iterations=8)
        res = framework.run_pagerank(
            pre, max_iterations=8, fault_plan=FaultPlan()
        )
        assert res.total_cycles == base.total_cycles
        assert res.iterations == base.iterations
        np.testing.assert_array_equal(res.props, base.props)
        assert res.health.fault_count == 0
        assert res.health.overhead_cycles == 0.0

    def test_watchdog_trips_on_latency_spike(self, framework, pre):
        # 4L2B topology: big0 is global pipeline 4 -> channels 8/9.
        plan = FaultPlan(seed=3, latency_spikes=(
            LatencySpikeFault(
                channel=8, duration_cycles=60_000.0, multiplier=50.0,
            ),
        ))
        run = framework.run_pagerank(
            pre, max_iterations=10, fault_plan=plan,
            resilience=ResiliencePolicy(
                watchdog_slack=2.0, watchdog_floor_cycles=100.0
            ),
        )
        health = run.health
        assert health.watchdog_trips >= 1
        assert health.retries >= 1
        assert health.backoff_cycles > 0.0
        # The bounded spike was waited out, not degraded around.
        assert health.replans == 0
        assert run.converged

    def test_unpinned_stall_exhausts_retries(self, framework, pre):
        plan = FaultPlan(seed=2, stalls=(
            PipelineStallFault(probability=1.0),
        ))
        with pytest.raises(ResilienceExhaustedError):
            framework.run_pagerank(
                pre, max_iterations=4, fault_plan=plan,
                resilience=ResiliencePolicy(max_retries=1),
            )

    def test_every_health_report_carries_breaker_state(self, framework, pre):
        # U50 6-pipeline topology: 12 pseudo-channels, all reported even
        # when nothing faulted.
        run = framework.run_pagerank(
            pre, max_iterations=4, fault_plan=FaultPlan()
        )
        breakers = run.health.channel_breakers
        assert sorted(breakers) == sorted(str(c) for c in range(12))
        assert all(s["state"] == "closed" for s in breakers.values())
        assert run.health.breaker_trips == 0

    def test_dead_channel_force_opens_breaker(self, framework, pre):
        plan = FaultPlan(dead_channels=(
            DeadChannelFault(channel=0, onset_cycle=6000.0),
        ))
        run = framework.run_pagerank(pre, max_iterations=20, fault_plan=plan)
        health = run.health
        assert health.breaker_trips == 1
        assert health.channel_breakers["0"]["state"] == "open"
        assert health.channel_breakers["0"]["last_category"] == "dead-channel"
        assert health.channel_breakers["1"]["state"] == "closed"

    def test_breaker_degrades_before_retries_exhaust(self, framework, pre):
        # A persistent pinned stall with a huge retry budget: without
        # breakers the executor would retry forever-ish; the breaker
        # opens after 2 failures and degrades the pipeline instead.
        plan = FaultPlan(seed=6, stalls=(
            PipelineStallFault(probability=1.0, pipeline=1),
        ))
        run = framework.run_pagerank(
            pre, max_iterations=6, fault_plan=plan,
            resilience=ResiliencePolicy(
                max_retries=50, breaker_threshold=2
            ),
        )
        health = run.health
        assert health.breaker_trips >= 1
        assert health.replans >= 1
        assert health.retries < 50
        assert any(
            s["state"] == "open" for s in health.channel_breakers.values()
        )
        assert run.converged

    def test_health_report_serialises(self, framework, pre):
        plan = FaultPlan(seed=7, bit_flips=(
            BitFlipFault(probability=0.02),
        ))
        run = framework.run_pagerank(pre, max_iterations=6, fault_plan=plan)
        d = run.health.to_dict()
        assert d["retries"] == run.health.retries
        assert len(d["faults"]) == run.health.fault_count
        assert d["initial_label"] == "4L2B"
        assert d["breaker_trips"] == run.health.breaker_trips
        assert d["channel_breakers"] == run.health.channel_breakers

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rate=st.sampled_from([0.0, 0.01, 0.05]),
    )
    @settings(max_examples=10, deadline=None)
    def test_identical_configuration_identical_history(
        self, framework, pre, seed, rate
    ):
        plan = FaultPlan(
            seed=seed,
            bit_flips=(
                (BitFlipFault(probability=rate),) if rate else ()
            ),
            stalls=(PipelineStallFault(probability=rate / 10, pipeline=0),),
        )

        def outcome():
            # A heavy fault rate may deterministically exhaust retries;
            # identical config must then fail identically too.
            try:
                run = framework.run_pagerank(
                    pre, max_iterations=5, fault_plan=plan
                )
            except ResilienceExhaustedError as exc:
                return ("exhausted", str(exc))
            return (run.health.to_dict(), run.total_cycles, run.props)

        first, second = outcome(), outcome()
        assert first[0] == second[0]
        assert first[1] == second[1]
        if len(first) == 3:
            np.testing.assert_array_equal(first[2], second[2])


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestFaultsimCli:
    ARGS = [
        "faultsim", "--dataset", "HD", "--scale", "0.02",
        "--platform", "U50", "--pipelines", "6",
        "--buffer-vertices", "256", "--iterations", "20",
    ]

    def test_faultsim_smoke(self, capsys):
        code = main(self.ARGS + ["--dead-channel", "0",
                                 "--bit-flip-rate", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean run:" in out and "faulted run:" in out
        assert "re-plans" in out and "overhead:" in out
        assert "breaker trips" in out

    def test_faultsim_prints_effective_seeds(self, capsys):
        # --fault-seed defaults to the graph --seed; the printed line is
        # enough to reproduce the invocation.
        code = main(self.ARGS + ["--seed", "9", "--stall-rate", "0.05",
                                 "--stall-pipeline", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "seeds: graph=9 fault=9" in out
        assert "--seed 9 --fault-seed 9" in out

    def test_faultsim_explicit_fault_seed_wins(self, capsys):
        code = main(self.ARGS + ["--seed", "9", "--fault-seed", "13",
                                 "--stall-rate", "0.05",
                                 "--stall-pipeline", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "seeds: graph=9 fault=13" in out

    def test_faultsim_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            self.ARGS + ["--spike-channel", "3", "--stall-rate", "0.1"]
        )
        assert args.command == "faultsim"
        assert args.spike_channel == 3

    def test_bad_dataset_exits_2(self, capsys):
        assert main(["run", "--dataset", "NO_SUCH_KEY"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "\n" == err[err.index("\n"):]

    def test_unreadable_edge_list_exits_2(self, capsys):
        assert main(["preprocess", "--edge-list", "/no/such/file"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_source_still_systemexit(self):
        # SystemExit from argument validation is not swallowed.
        with pytest.raises(SystemExit):
            main(["faultsim"])
