"""Fault-injection framework and resilient runtime: unit tests.

Integration-level fault scenarios (dead channel mid-run, degradation
correctness against the NumPy references) live in
``test_integration_u50_robustness.py``; this module covers the building
blocks — fault plans, checkpoints, watchdog/backoff arithmetic, the
error hierarchy, zero-fault parity and seed determinism — plus the
``faultsim`` CLI surface.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import PipelineConfig
from repro.cli import main
from repro.core.framework import ReGraph
from repro.errors import (
    AcceleratorReleasedError,
    ChannelFaultError,
    DataCorruptionError,
    DeviceOutOfMemoryError,
    FaultInjectedError,
    PipelineStallError,
    ReproError,
    ResilienceExhaustedError,
    UserInputError,
    WatchdogTimeoutError,
)
from repro.faults import (
    BitFlipFault,
    CheckpointStore,
    DeadChannelFault,
    FaultInjector,
    FaultPlan,
    LatencySpikeFault,
    PipelineStallFault,
    ResiliencePolicy,
)


@pytest.fixture(scope="module")
def framework():
    return ReGraph(
        "U50",
        pipeline=PipelineConfig(gather_buffer_vertices=256),
        num_pipelines=6,
    )


@pytest.fixture(scope="module")
def pre(framework, small_powerlaw):
    return framework.preprocess(small_powerlaw)


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_empty_by_default(self):
        assert FaultPlan().is_empty
        assert not FaultPlan(
            bit_flips=(BitFlipFault(probability=0.1),)
        ).is_empty

    def test_dict_round_trip(self):
        plan = FaultPlan(
            seed=42,
            dead_channels=(DeadChannelFault(channel=3, onset_cycle=10.0),),
            latency_spikes=(LatencySpikeFault(
                channel=1, onset_cycle=5.0,
                duration_cycles=99.0, multiplier=4.0,
            ),),
            bit_flips=(BitFlipFault(probability=0.25, detectable=False),),
            stalls=(PipelineStallFault(probability=0.5, pipeline=2),),
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_defaults(self):
        assert FaultPlan.from_dict({}) == FaultPlan()


# ----------------------------------------------------------------------
# Error hierarchy
# ----------------------------------------------------------------------
class TestErrorHierarchy:
    def test_fault_errors_are_repro_errors(self):
        for cls in (ChannelFaultError, PipelineStallError,
                    DataCorruptionError, WatchdogTimeoutError):
            assert issubclass(cls, FaultInjectedError)
            assert issubclass(cls, ReproError)

    def test_builtin_bases_preserved(self):
        # Callers that guarded with builtin exception types keep working.
        assert issubclass(AcceleratorReleasedError, RuntimeError)
        assert issubclass(DeviceOutOfMemoryError, MemoryError)
        assert issubclass(UserInputError, ValueError)

    def test_categories(self):
        assert ChannelFaultError(0, ("little", 0)).category == "dead-channel"
        assert DataCorruptionError("x").category == "bit-flip"
        assert PipelineStallError("x").category == "pipeline-stall"
        err = WatchdogTimeoutError(200.0, 100.0, victim=("big", 0))
        assert err.category == "watchdog-timeout"
        assert err.measured_cycles == 200.0 and err.victim == ("big", 0)


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_save_restore_round_trip(self):
        store = CheckpointStore(keep=2)
        props = np.arange(8, dtype=np.float64)
        store.save(3, props, 123.0)
        props[:] = -1.0  # the snapshot must be an independent copy
        cp = store.restore()
        assert cp.iteration == 3 and cp.total_cycles == 123.0
        np.testing.assert_array_equal(cp.props, np.arange(8))
        assert store.saves == 1 and store.restores == 1

    def test_keeps_only_recent(self):
        store = CheckpointStore(keep=2)
        for i in range(5):
            store.save(i, np.full(2, float(i)), float(i))
        assert store.latest().iteration == 4
        assert len(store._stack) == 2

    def test_restore_empty_raises(self):
        with pytest.raises(ResilienceExhaustedError):
            CheckpointStore().restore()

    def test_file_round_trip(self, tmp_path):
        store = CheckpointStore()
        store.save(7, np.linspace(0, 1, 5), 99.5)
        path = store.to_file(tmp_path / "ckpt.npz")
        cp = CheckpointStore.from_file(path)
        assert cp.iteration == 7 and cp.total_cycles == 99.5
        np.testing.assert_allclose(cp.props, np.linspace(0, 1, 5))


# ----------------------------------------------------------------------
# Policy arithmetic
# ----------------------------------------------------------------------
class TestResiliencePolicy:
    def test_backoff_grows_exponentially(self):
        policy = ResiliencePolicy(
            backoff_base_cycles=100.0, backoff_factor=2.0
        )
        assert policy.backoff_cycles(1) == 100.0
        assert policy.backoff_cycles(2) == 200.0
        assert policy.backoff_cycles(3) == 400.0

    def test_watchdog_budget_floor(self):
        policy = ResiliencePolicy(
            watchdog_slack=4.0, watchdog_floor_cycles=1000.0
        )
        assert policy.watchdog_budget(500.0) == 3000.0
        assert policy.watchdog_budget(0.0) == 1000.0


# ----------------------------------------------------------------------
# Injector mechanics
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_channel_to_pipeline_mapping(self):
        inj = FaultInjector(FaultPlan())
        inj.bind_topology(num_little=4, num_big=2)
        assert inj._pipeline_of_channel(0) == ("little", 0)
        assert inj._pipeline_of_channel(7) == ("little", 3)
        assert inj._pipeline_of_channel(8) == ("big", 0)
        assert inj._pipeline_of_channel(11) == ("big", 1)
        assert inj._pipeline_of_channel(12) is None

    def test_dead_channel_raises_on_owner_only(self):
        inj = FaultInjector(FaultPlan(
            dead_channels=(DeadChannelFault(channel=2),)
        ))
        inj.bind_topology(num_little=2, num_big=1)
        inj.enter_pipeline("little", 0)
        inj.on_task("little")  # channel 2 belongs to little1, not little0
        inj.enter_pipeline("little", 1)
        with pytest.raises(ChannelFaultError) as exc:
            inj.on_task("little")
        assert exc.value.victim == ("little", 1)

    def test_retired_channel_stops_faulting(self):
        inj = FaultInjector(FaultPlan(
            dead_channels=(DeadChannelFault(channel=0),)
        ))
        inj.bind_topology(num_little=2, num_big=1)
        inj.retire_pipeline("little", 0)
        inj.bind_topology(num_little=1, num_big=1)
        assert not inj.timing_faults_active()
        inj.enter_pipeline("little", 0)
        inj.on_task("little")  # does not raise

    def test_spike_scales_only_in_window_and_context(self):
        inj = FaultInjector(FaultPlan(latency_spikes=(
            LatencySpikeFault(
                channel=0, onset_cycle=100.0,
                duration_cycles=50.0, multiplier=10.0,
            ),
        )))
        inj.bind_topology(num_little=1, num_big=0)
        inj.enter_pipeline("little", 0)
        inj.now = 120.0
        assert inj.scale_latency(24.0) == 240.0
        inj.now = 200.0  # window expired
        assert inj.scale_latency(24.0) == 24.0
        inj.now = 120.0
        inj.exit_pipeline()  # Apply/Writer context is unscoped
        assert inj.scale_latency(24.0) == 24.0

    def test_silent_flip_changes_one_bit(self):
        inj = FaultInjector(FaultPlan(
            seed=5,
            bit_flips=(BitFlipFault(probability=1.0, detectable=False),),
        ))
        buffer = np.zeros(16, dtype=np.float32)
        out = inj.filter_buffer(buffer)
        assert np.all(buffer == 0.0)  # input untouched
        assert np.count_nonzero(
            np.unpackbits(out.view(np.uint8) ^ buffer.view(np.uint8))
        ) == 1

    def test_detectable_flip_raises(self):
        inj = FaultInjector(FaultPlan(
            bit_flips=(BitFlipFault(probability=1.0),)
        ))
        with pytest.raises(DataCorruptionError):
            inj.filter_buffer(np.ones(4))


# ----------------------------------------------------------------------
# Resilient execution through the framework
# ----------------------------------------------------------------------
class TestResilientRuns:
    def test_zero_fault_plan_is_free(self, framework, pre):
        base = framework.run_pagerank(pre, max_iterations=8)
        res = framework.run_pagerank(
            pre, max_iterations=8, fault_plan=FaultPlan()
        )
        assert res.total_cycles == base.total_cycles
        assert res.iterations == base.iterations
        np.testing.assert_array_equal(res.props, base.props)
        assert res.health.fault_count == 0
        assert res.health.overhead_cycles == 0.0

    def test_watchdog_trips_on_latency_spike(self, framework, pre):
        # 4L2B topology: big0 is global pipeline 4 -> channels 8/9.
        plan = FaultPlan(seed=3, latency_spikes=(
            LatencySpikeFault(
                channel=8, duration_cycles=60_000.0, multiplier=50.0,
            ),
        ))
        run = framework.run_pagerank(
            pre, max_iterations=10, fault_plan=plan,
            resilience=ResiliencePolicy(
                watchdog_slack=2.0, watchdog_floor_cycles=100.0
            ),
        )
        health = run.health
        assert health.watchdog_trips >= 1
        assert health.retries >= 1
        assert health.backoff_cycles > 0.0
        # The bounded spike was waited out, not degraded around.
        assert health.replans == 0
        assert run.converged

    def test_unpinned_stall_exhausts_retries(self, framework, pre):
        plan = FaultPlan(seed=2, stalls=(
            PipelineStallFault(probability=1.0),
        ))
        with pytest.raises(ResilienceExhaustedError):
            framework.run_pagerank(
                pre, max_iterations=4, fault_plan=plan,
                resilience=ResiliencePolicy(max_retries=1),
            )

    def test_health_report_serialises(self, framework, pre):
        plan = FaultPlan(seed=7, bit_flips=(
            BitFlipFault(probability=0.02),
        ))
        run = framework.run_pagerank(pre, max_iterations=6, fault_plan=plan)
        d = run.health.to_dict()
        assert d["retries"] == run.health.retries
        assert len(d["faults"]) == run.health.fault_count
        assert d["initial_label"] == "4L2B"

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rate=st.sampled_from([0.0, 0.01, 0.05]),
    )
    @settings(max_examples=10, deadline=None)
    def test_identical_configuration_identical_history(
        self, framework, pre, seed, rate
    ):
        plan = FaultPlan(
            seed=seed,
            bit_flips=(
                (BitFlipFault(probability=rate),) if rate else ()
            ),
            stalls=(PipelineStallFault(probability=rate / 10, pipeline=0),),
        )

        def outcome():
            # A heavy fault rate may deterministically exhaust retries;
            # identical config must then fail identically too.
            try:
                run = framework.run_pagerank(
                    pre, max_iterations=5, fault_plan=plan
                )
            except ResilienceExhaustedError as exc:
                return ("exhausted", str(exc))
            return (run.health.to_dict(), run.total_cycles, run.props)

        first, second = outcome(), outcome()
        assert first[0] == second[0]
        assert first[1] == second[1]
        if len(first) == 3:
            np.testing.assert_array_equal(first[2], second[2])


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestFaultsimCli:
    ARGS = [
        "faultsim", "--dataset", "HD", "--scale", "0.02",
        "--platform", "U50", "--pipelines", "6",
        "--buffer-vertices", "256", "--iterations", "20",
    ]

    def test_faultsim_smoke(self, capsys):
        code = main(self.ARGS + ["--dead-channel", "0",
                                 "--bit-flip-rate", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean run:" in out and "faulted run:" in out
        assert "re-plans" in out and "overhead:" in out

    def test_faultsim_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            self.ARGS + ["--spike-channel", "3", "--stall-rate", "0.1"]
        )
        assert args.command == "faultsim"
        assert args.spike_channel == 3

    def test_bad_dataset_exits_2(self, capsys):
        assert main(["run", "--dataset", "NO_SUCH_KEY"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "\n" == err[err.index("\n"):]

    def test_unreadable_edge_list_exits_2(self, capsys):
        assert main(["preprocess", "--edge-list", "/no/such/file"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_missing_source_still_systemexit(self):
        # SystemExit from argument validation is not swallowed.
        with pytest.raises(SystemExit):
            main(["faultsim"])
