"""Tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
)


class TestRmat:
    def test_sizes(self):
        g = rmat_graph(10, 8, seed=0)
        assert g.num_vertices == 1024
        assert g.num_edges == 1024 * 8

    def test_deterministic_in_seed(self):
        a = rmat_graph(8, 4, seed=42)
        b = rmat_graph(8, 4, seed=42)
        np.testing.assert_array_equal(a.src, b.src)
        np.testing.assert_array_equal(a.dst, b.dst)

    def test_different_seeds_differ(self):
        a = rmat_graph(8, 4, seed=1)
        b = rmat_graph(8, 4, seed=2)
        assert not np.array_equal(a.dst, b.dst)

    def test_skewed_degree_distribution(self):
        g = rmat_graph(12, 16, seed=0)
        deg = np.sort(g.in_degrees())[::-1]
        top1pct = deg[: len(deg) // 100].sum()
        # RMAT concentrates a large share of edges on few vertices.
        assert top1pct / g.num_edges > 0.10

    def test_more_skewed_than_uniform(self):
        r = rmat_graph(11, 8, seed=0)
        u = erdos_renyi_graph(2048, 2048 * 8, seed=0)
        assert r.in_degrees().max() > 2 * u.in_degrees().max()

    def test_invalid_probabilities_raise(self):
        with pytest.raises(ValueError):
            rmat_graph(8, 4, a=0.6, b=0.3, c=0.2)

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            rmat_graph(0, 4)


class TestPowerLaw:
    def test_sizes(self):
        g = power_law_graph(1000, 8000, seed=0)
        assert g.num_vertices == 1000
        assert g.num_edges == 8000

    def test_undirected_mirrors_edges(self):
        g = power_law_graph(500, 4000, seed=0, undirected=True)
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        mirrored = sum((d, s) in pairs for s, d in pairs)
        assert mirrored == len(pairs)

    def test_skew_grows_with_exponent(self):
        lo = power_law_graph(2000, 20_000, exponent=1.0, seed=3)
        hi = power_law_graph(2000, 20_000, exponent=2.5, seed=3)
        assert hi.in_degrees().max() > lo.in_degrees().max()

    def test_deterministic(self):
        a = power_law_graph(300, 2000, seed=9)
        b = power_law_graph(300, 2000, seed=9)
        np.testing.assert_array_equal(a.src, b.src)

    def test_nonpositive_exponent_raises(self):
        with pytest.raises(ValueError):
            power_law_graph(100, 200, exponent=0.0)


class TestErdosRenyi:
    def test_sizes(self):
        g = erdos_renyi_graph(100, 900, seed=0)
        assert g.num_vertices == 100
        assert g.num_edges == 900

    def test_roughly_uniform_degrees(self):
        g = erdos_renyi_graph(1000, 50_000, seed=0)
        deg = g.in_degrees()
        # Poisson(50): max should stay within ~2.2x of the mean.
        assert deg.max() < 2.2 * deg.mean()
