"""Metamorphic properties of the model, scheduler and channel (slow suite).

Each property states a monotonicity or equivalence law the system must
obey for *every* input, then lets hypothesis hunt for counterexamples:

* growing the edge set never shrinks the modelled work;
* the pipeline combination changes timing, never answers;
* a strictly more capable channel never gets slower;
* more pipelines never lengthen the modelled makespan;
* every drawn scheduling plan produces an invariant-clean trace;
* fault plans survive their serialisation round-trip.

Run with ``pytest -m slow``; the tier-1 suite excludes these by default.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.reference import bfs_reference
from repro.arch.trace import trace_plan
from repro.check import check_trace
from repro.faults.plan import FaultPlan
from repro.graph.coo import Graph
from repro.graph.partition import partition_graph
from repro.hbm.channel import HbmChannelModel, HbmTimingParams
from repro.sched.scheduler import build_schedule

from tests.helpers import make_framework
from tests.strategies import (
    STRATEGY_CONFIG,
    STRATEGY_MODEL,
    channel_param_perturbations,
    edge_lists,
    fault_plans,
    graphs,
    scheduling_plans,
)

pytestmark = pytest.mark.slow

_CHANNEL = HbmChannelModel()


def _total_modelled_work(graph):
    """Modelled little-pipeline cycles to stream every edge once."""
    if graph.num_edges == 0:
        return 0.0
    return float(STRATEGY_MODEL.edge_costs_little(graph.src).sum())


class TestWorkMonotonicity:
    """Adding edges never reduces the total modelled work."""

    @given(edge_lists(max_vertices=48, max_edges=150),
           edge_lists(max_vertices=48, max_edges=50))
    @settings(max_examples=40, deadline=None)
    def test_edge_superset_never_cheaper(self, base, extra):
        n1, src1, dst1 = base
        n2, src2, dst2 = extra
        n = max(n1, n2)
        small = Graph(n, src1, dst1)
        grown = Graph(n, src1 + src2, dst1 + dst2)
        assert grown.num_edges > small.num_edges
        assert (
            _total_modelled_work(grown)
            >= _total_modelled_work(small) - 1e-9
        )

    @given(edge_lists(max_vertices=48, max_edges=150),
           edge_lists(max_vertices=48, max_edges=50))
    @settings(max_examples=40, deadline=None)
    def test_edge_superset_never_shrinks_plan(self, base, extra):
        n1, src1, dst1 = base
        n2, src2, dst2 = extra
        n = max(n1, n2)
        small = Graph(n, src1, dst1)
        grown = Graph(n, src1 + src2, dst1 + dst2)
        interval = STRATEGY_CONFIG.partition_vertices
        plan_small = build_schedule(
            partition_graph(small, interval), STRATEGY_MODEL, 2
        )
        plan_grown = build_schedule(
            partition_graph(grown, interval), STRATEGY_MODEL, 2
        )
        assert plan_grown.total_edges() >= plan_small.total_edges()


class TestCombinationInvariance:
    """Swapping Big and Little pipelines changes cycles, never answers.

    All arithmetic on the datapath is integer or fixed-point, so the
    answers are bitwise identical across combinations — not merely
    close.
    """

    @given(graphs(max_vertices=48, max_edges=160), st.integers(0, 3))
    @settings(max_examples=15, deadline=None)
    def test_bfs_identical_across_combos(self, graph, root_seed):
        root = root_seed % graph.num_vertices
        fw = make_framework("U280", buffer_vertices=32, num_pipelines=3)
        ref = bfs_reference(graph, root)
        for combo in [(3, 0), (0, 3), (2, 1)]:
            pre = fw.preprocess(graph, forced_combo=combo)
            run = fw.run_bfs(pre, root=root)
            np.testing.assert_array_equal(run.props, ref)

    @given(graphs(max_vertices=40, max_edges=120))
    @settings(max_examples=10, deadline=None)
    def test_pagerank_identical_across_combos(self, graph):
        fw = make_framework("U280", buffer_vertices=32, num_pipelines=3)
        baseline = None
        for combo in [(3, 0), (0, 3), (2, 1)]:
            pre = fw.preprocess(graph, forced_combo=combo)
            run = fw.run_pagerank(pre, max_iterations=3)
            if baseline is None:
                baseline = run.result
            else:
                np.testing.assert_array_equal(run.result, baseline)


class TestChannelMonotonicity:
    """A strictly more capable channel never slows anything down."""

    @given(st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_doubling_outstanding_never_slower(self, strides):
        arr = np.array(strides, dtype=np.float64)
        base = HbmChannelModel(HbmTimingParams(max_outstanding=16))
        wide = HbmChannelModel(HbmTimingParams(max_outstanding=32))
        assert np.all(
            wide.effective_request_cycles(arr)
            <= base.effective_request_cycles(arr) + 1e-9
        )

    @given(st.integers(0, 1 << 16))
    @settings(max_examples=60, deadline=None)
    def test_doubling_burst_rate_never_slower(self, num_blocks):
        base = HbmChannelModel(HbmTimingParams(burst_blocks_per_cycle=1.0))
        fast = HbmChannelModel(HbmTimingParams(burst_blocks_per_cycle=2.0))
        assert (
            fast.burst_cycles(num_blocks)
            <= base.burst_cycles(num_blocks) + 1e-9
        )
        assert (
            fast.bandwidth_bytes_per_cycle()
            == 2 * base.bandwidth_bytes_per_cycle()
        )


class TestPipelineScaling:
    """Doubling the pipeline count never increases the modelled makespan."""

    @given(graphs(max_vertices=64, max_edges=250), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_more_pipelines_never_longer(self, graph, k):
        pset = partition_graph(graph, STRATEGY_CONFIG.partition_vertices)
        narrow = build_schedule(pset, STRATEGY_MODEL, k)
        wide = build_schedule(pset, STRATEGY_MODEL, 2 * k)
        assert (
            wide.estimated_makespan
            <= narrow.estimated_makespan + 1e-6
        )


class TestDrawnPlansAreConformant:
    """Every plan the strategies produce yields an invariant-clean trace."""

    @given(scheduling_plans(max_pipelines=4, max_vertices=64, max_edges=250))
    @settings(max_examples=20, deadline=None)
    def test_trace_invariants_hold(self, drawn):
        graph, plan = drawn
        plan.validate(expected_edges=graph.num_edges)
        trace = trace_plan(plan, _CHANNEL)
        assert check_trace(trace, plan=plan, channel=_CHANNEL) == []


class TestFaultPlanRoundTrip:
    @given(fault_plans())
    @settings(max_examples=60, deadline=None)
    def test_to_dict_from_dict_is_identity(self, plan):
        assert FaultPlan.from_dict(plan.to_dict()) == plan


class TestCompiledPathConformance:
    """The compiled evaluator obeys the suite's channel laws for every
    drawn plan × channel-parameter binding — not just the defaults the
    interpreted monotonicity tests exercise."""

    @given(gp=scheduling_plans(), params=channel_param_perturbations())
    @settings(max_examples=25, deadline=None)
    def test_compiled_evaluation_is_deterministic(self, gp, params):
        from repro.compiled import compile_plan, evaluate_plan

        _graph, plan = gp
        cplan = compile_plan(plan)
        channel = HbmChannelModel(params)
        assert evaluate_plan(cplan, channel) == evaluate_plan(
            cplan, channel
        )

    @given(gp=scheduling_plans(), params=channel_param_perturbations())
    @settings(max_examples=25, deadline=None)
    def test_more_outstanding_never_slower(self, gp, params):
        import dataclasses

        from repro.compiled import compile_plan, evaluate_plan

        _graph, plan = gp
        cplan = compile_plan(plan)
        base = evaluate_plan(cplan, HbmChannelModel(params))
        boosted = dataclasses.replace(
            params, max_outstanding=params.max_outstanding * 2
        )
        fast = evaluate_plan(cplan, HbmChannelModel(boosted))
        for slow_t, fast_t in zip(base, fast):
            assert fast_t.total_cycles <= slow_t.total_cycles
