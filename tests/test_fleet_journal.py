"""Write-ahead journal unit coverage (docs/DURABILITY.md).

Record format, checksum detection, torn-tail truncation, quarantine
bundles, storage-fault injection, the state projection, and sequence
continuation across reopen — everything below acts on journal files
directly, without a fleet runtime.
"""

import json

import pytest

from repro.errors import UserInputError
from repro.faults.plan import STORAGE_FAULT_KINDS, StorageFault
from repro.fleet.journal import (
    JOURNAL_SCHEMA,
    QUARANTINE_SCHEMA,
    RECORD_TYPES,
    JobJournal,
    JournalRecord,
    apply_storage_fault,
    project_journal,
    read_journal,
    repair_journal,
)


def _write(path, *entries, fsync=False):
    """Append (type, payload) pairs through the real append path."""
    with JobJournal(path, fsync=fsync) as journal:
        for rtype, payload in entries:
            journal.append(rtype, payload)


class TestRecordFormat:
    def test_line_round_trips(self):
        record = JournalRecord(3, "dispatch", {"job_id": "j1", "time": 0.5})
        data = json.loads(record.line())
        assert data["seq"] == 3
        assert data["type"] == "dispatch"
        assert data["payload"] == {"job_id": "j1", "time": 0.5}
        assert len(data["crc"]) == 8

    def test_schemas_are_versioned(self):
        assert JOURNAL_SCHEMA.endswith("/v1")
        assert QUARANTINE_SCHEMA.endswith("/v1")

    def test_unknown_record_type_rejected(self, tmp_path):
        with JobJournal(tmp_path / "j") as journal:
            with pytest.raises(UserInputError, match="unknown journal"):
                journal.append("not-a-type", {})

    def test_all_record_types_appendable(self, tmp_path):
        path = tmp_path / "j"
        _write(path, *[(t, {"i": i}) for i, t in enumerate(RECORD_TYPES)])
        scan = read_journal(path)
        assert scan.clean
        assert [r.type for r in scan.records] == list(RECORD_TYPES)
        assert [r.seq for r in scan.records] == list(range(len(RECORD_TYPES)))


class TestReadJournal:
    def test_missing_file_is_typed_error(self, tmp_path):
        with pytest.raises(UserInputError, match="not found"):
            read_journal(tmp_path / "absent.journal")

    def test_clean_scan(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {"jobs": []}), ("run-end", {}))
        scan = read_journal(path)
        assert scan.clean and not scan.torn_tail
        assert scan.intact_bytes == path.stat().st_size

    def test_checksum_mismatch_detected(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}), ("submit", {"job_id": "a"}),
               ("run-end", {}))
        apply_storage_fault(path, StorageFault(kind="bit-flip", record=1))
        scan = read_journal(path)
        assert len(scan.records) == 2
        assert len(scan.corrupt) == 1
        assert "checksum" in scan.corrupt[0].reason

    def test_unterminated_tail_detected(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}), ("submit", {"job_id": "a"}))
        intact = read_journal(path).intact_bytes
        apply_storage_fault(path, StorageFault(kind="torn-write"))
        scan = read_journal(path)
        assert scan.torn_tail
        assert len(scan.records) == 1
        # The truncation point is the end of the surviving record.
        assert scan.intact_bytes < intact

    def test_sequence_regression_rejected(self, tmp_path):
        path = tmp_path / "j"
        lines = [
            JournalRecord(0, "run-begin", {}).line(),
            JournalRecord(5, "submit", {}).line(),
            JournalRecord(2, "submit", {}).line(),  # replayed stale seq
        ]
        path.write_text("".join(lines))
        scan = read_journal(path)
        assert [r.seq for r in scan.records] == [0, 5]
        assert "regression" in scan.corrupt[0].reason

    def test_never_modifies_the_file(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}), ("submit", {}))
        apply_storage_fault(path, StorageFault(kind="torn-write"))
        before = path.read_bytes()
        read_journal(path)
        assert path.read_bytes() == before


class TestRepair:
    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}), ("submit", {"job_id": "a"}),
               ("submit", {"job_id": "b"}))
        size = path.stat().st_size
        apply_storage_fault(path, StorageFault(kind="torn-write"))
        records, report = repair_journal(path)
        assert [r.payload.get("job_id") for r in records] == [None, "a"]
        assert report.truncated_bytes > 0
        assert path.stat().st_size < size
        # A repaired journal scans clean.
        assert read_journal(path).clean

    def test_partial_fsync_loses_two_records(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}), ("submit", {"job_id": "a"}),
               ("submit", {"job_id": "b"}), ("submit", {"job_id": "c"}))
        apply_storage_fault(path, StorageFault(kind="partial-fsync"))
        records, report = repair_journal(path)
        assert [r.payload.get("job_id") for r in records] == [None, "a"]
        assert report.truncated_bytes > 0

    def test_midfile_corruption_quarantined_not_truncated(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}), ("submit", {"job_id": "a"}),
               ("submit", {"job_id": "b"}), ("run-end", {}))
        apply_storage_fault(path, StorageFault(kind="bit-flip", record=1))
        records, report = repair_journal(path, tmp_path / "quarantine")
        # Later intact records survive; nothing is truncated.
        assert [r.type for r in records] == ["run-begin", "submit", "run-end"]
        assert report.truncated_bytes == 0
        assert report.quarantined == 1
        bundle = json.loads(open(report.quarantine_path).read())
        assert bundle["schema"] == QUARANTINE_SCHEMA
        assert len(bundle["corrupt_records"]) == 1
        assert bundle["torn_tail"] is False

    def test_repair_never_raises_on_damage(self, tmp_path):
        path = tmp_path / "j"
        path.write_text("complete garbage, not even json\n")
        records, report = repair_journal(path, tmp_path / "q")
        assert records == []
        assert report.quarantined == 1

    def test_clean_journal_untouched(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}), ("run-end", {}))
        before = path.read_bytes()
        records, report = repair_journal(path)
        assert len(records) == 2
        assert report.quarantined == 0 and report.truncated_bytes == 0
        assert path.read_bytes() == before


class TestSequenceContinuation:
    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}), ("submit", {}))
        _write(path, ("recover", {}), ("submit", {}))
        scan = read_journal(path)
        assert scan.clean
        assert [r.seq for r in scan.records] == [0, 1, 2, 3]

    def test_reopen_after_repair_continues_from_survivors(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}), ("submit", {}), ("submit", {}))
        apply_storage_fault(path, StorageFault(kind="torn-write"))
        repair_journal(path)
        _write(path, ("recover", {}))
        scan = read_journal(path)
        assert scan.clean
        assert scan.records[-1].seq == 2


class TestStorageFaults:
    @pytest.mark.parametrize("kind", STORAGE_FAULT_KINDS)
    def test_every_kind_damages_the_file(self, tmp_path, kind):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}), ("submit", {}), ("run-end", {}))
        before = path.read_bytes()
        description = apply_storage_fault(path, StorageFault(kind=kind))
        assert path.read_bytes() != before
        assert description
        # Every kind of damage is *detected* by the scan.
        assert not read_journal(path).clean

    def test_bit_flip_negative_index_counts_from_end(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}), ("submit", {}), ("run-end", {}))
        apply_storage_fault(path, StorageFault(kind="bit-flip", record=-1))
        scan = read_journal(path)
        assert [r.type for r in scan.records] == ["run-begin", "submit"]

    def test_empty_file_is_noop(self, tmp_path):
        path = tmp_path / "j"
        path.write_bytes(b"")
        assert "no-op" in apply_storage_fault(
            path, StorageFault(kind="torn-write")
        )

    def test_invalid_kind_rejected_at_construction(self):
        with pytest.raises(ValueError, match="kind"):
            StorageFault(kind="meteor-strike")

    def test_invalid_target_rejected_at_construction(self):
        with pytest.raises(ValueError, match="target"):
            StorageFault(kind="bit-flip", target="ramdisk")


class TestProjection:
    def test_folds_lifecycle(self, tmp_path):
        path = tmp_path / "j"
        _write(
            path,
            ("run-begin", {"jobs": []}),
            ("admit", {"job_id": "a", "job": {}}),
            ("admit", {"job_id": "b", "job": {}}),
            ("dispatch", {"job_id": "a", "replica_id": "r0",
                          "attempt": 1, "kind": "primary", "time": 0.1}),
            ("attempt-end", {"job_id": "a", "ok": True}),
            ("result", {"result": {"job_id": "a", "status": "completed"}}),
        )
        view = project_journal(read_journal(path).records)
        assert view.outstanding == ["b"]
        assert view.inflight == {}
        assert "a" in view.results
        assert view.run_end is None

    def test_recover_marker_resets_transient_state(self, tmp_path):
        path = tmp_path / "j"
        _write(
            path,
            ("run-begin", {"jobs": []}),
            ("admit", {"job_id": "a", "job": {}}),
            ("dispatch", {"job_id": "a", "replica_id": "r0"}),
            ("replica-state", {"replica_id": "r0", "state": "DRAINING"}),
            ("recover", {}),
        )
        view = project_journal(read_journal(path).records)
        assert view.recoveries == 1
        assert view.queued == {} and view.inflight == {} \
            and view.replicas == {}
        # The original run-begin is kept: it is the replay input.
        assert view.run_begin == {"jobs": []}

    def test_kill_retires_replica(self, tmp_path):
        path = tmp_path / "j"
        _write(path, ("run-begin", {}),
               ("kill", {"replica_id": "r1", "reason": "killed"}))
        view = project_journal(read_journal(path).records)
        assert view.replicas["r1"]["state"] == "RETIRED"
