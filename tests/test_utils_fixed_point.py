"""Tests for fixed-point arithmetic."""

import numpy as np
import pytest

from repro.utils.fixed_point import (
    FIXED_FRAC_BITS,
    FIXED_ONE,
    FixedPointFormat,
    fixed_to_float,
    float_to_fixed,
)


class TestConstants:
    def test_one_matches_frac_bits(self):
        assert FIXED_ONE == 1 << FIXED_FRAC_BITS

    def test_default_format_one(self):
        assert FixedPointFormat().one == FIXED_ONE


class TestConversion:
    def test_roundtrip_scalar(self):
        assert fixed_to_float(float_to_fixed(0.5)) == pytest.approx(0.5)

    def test_roundtrip_array(self):
        values = np.array([0.0, 0.25, 1.0, -0.75, 3.125])
        out = fixed_to_float(float_to_fixed(values))
        np.testing.assert_allclose(out, values)

    def test_roundtrip_within_resolution(self):
        fmt = FixedPointFormat()
        values = np.linspace(-2, 2, 1001)
        out = fmt.to_float(fmt.from_float(values))
        assert np.max(np.abs(out - values)) <= fmt.resolution

    def test_one_maps_to_raw_one(self):
        assert float_to_fixed(1.0) == FIXED_ONE

    def test_custom_frac_bits(self):
        assert float_to_fixed(1.0, frac_bits=8) == 256
        assert fixed_to_float(256, frac_bits=8) == 1.0

    def test_resolution(self):
        fmt = FixedPointFormat(frac_bits=10)
        assert fmt.resolution == 1.0 / 1024


class TestArithmetic:
    def test_multiply_identity(self):
        fmt = FixedPointFormat()
        x = fmt.from_float(0.3)
        assert fmt.to_float(fmt.multiply(x, fmt.one)) == pytest.approx(
            0.3, abs=fmt.resolution
        )

    def test_multiply_halves(self):
        fmt = FixedPointFormat()
        half = fmt.from_float(0.5)
        quarter = fmt.multiply(half, half)
        assert fmt.to_float(quarter) == pytest.approx(0.25, abs=fmt.resolution)

    def test_multiply_array(self):
        fmt = FixedPointFormat()
        a = fmt.from_float(np.array([0.5, 0.25]))
        b = fmt.from_float(np.array([0.5, 0.5]))
        out = fmt.to_float(fmt.multiply(a, b))
        np.testing.assert_allclose(out, [0.25, 0.125], atol=2 * fmt.resolution)

    def test_divide_fixed_by_fixed(self):
        fmt = FixedPointFormat()
        out = fmt.divide(fmt.from_float(0.5), fmt.from_float(2.0))
        assert fmt.to_float(out) == pytest.approx(0.25, abs=fmt.resolution)

    def test_divide_by_zero_guard(self):
        fmt = FixedPointFormat()
        # Division by a zero word is guarded (treated as divide by raw 1).
        out = fmt.divide(fmt.from_float(0.5), 0)
        assert out == fmt.from_float(0.5) << fmt.frac_bits

    def test_no_overflow_in_widening_multiply(self):
        fmt = FixedPointFormat()
        big = fmt.from_float(1.9)
        prod = fmt.multiply(big, big)
        assert fmt.to_float(prod) == pytest.approx(3.61, abs=1e-6)
