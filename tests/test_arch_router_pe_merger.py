"""Tests for the Data Router, PE arrays and Mergers."""

import numpy as np
import pytest

from repro.apps.pagerank import PageRank
from repro.apps.bfs import BreadthFirstSearch
from repro.arch.merger import merge_buffers, merger_cycles
from repro.arch.pe import GatherPeArray, ScatterPeArray
from repro.arch.router import ButterflyRouter
from repro.graph.generators import erdos_renyi_graph


class TestButterflyRouter:
    def test_requires_power_of_two(self):
        with pytest.raises(ValueError):
            ButterflyRouter(6)

    def test_switch_count(self):
        # (N/2) * log2(N) 2x2 switches.
        assert ButterflyRouter(8).num_switches == 12
        assert ButterflyRouter(4).num_switches == 4
        assert ButterflyRouter(1).num_switches == 0

    def test_stage_count(self):
        assert ButterflyRouter(8).num_stages == 3

    def test_route_delivers_everything(self, rng):
        router = ButterflyRouter(8)
        lanes = rng.integers(0, 8, 100)
        values = rng.integers(0, 1000, 100)
        out = router.route(lanes, values)
        assert sum(o.size for o in out) == 100

    def test_route_correct_lane(self, rng):
        router = ButterflyRouter(4)
        lanes = rng.integers(0, 4, 50)
        values = np.arange(50)
        out = router.route(lanes, values)
        for lane in range(4):
            np.testing.assert_array_equal(out[lane], values[lanes == lane])

    def test_route_preserves_order_within_lane(self):
        router = ButterflyRouter(2)
        out = router.route(np.array([0, 1, 0, 0]), np.array([9, 8, 7, 6]))
        np.testing.assert_array_equal(out[0], [9, 7, 6])

    def test_route_rejects_bad_lane(self):
        router = ButterflyRouter(4)
        with pytest.raises(ValueError):
            router.route(np.array([5]), np.array([1]))

    def test_conflict_factor_balanced(self):
        router = ButterflyRouter(8)
        lanes = np.tile(np.arange(8), 10)
        assert router.conflict_factor(lanes, 8) == pytest.approx(1.0)

    def test_conflict_factor_serialised(self):
        router = ButterflyRouter(8)
        lanes = np.zeros(80, dtype=np.int64)
        assert router.conflict_factor(lanes, 8) == pytest.approx(8.0)


class TestScatterPeArray:
    def test_applies_udf(self):
        g = erdos_renyi_graph(16, 64, seed=0)
        app = BreadthFirstSearch(g, root=0)
        pes = ScatterPeArray(8)
        props = np.array([0, 5, 2**31 - 1], dtype=np.int64)
        out = pes.process(app, props, None)
        np.testing.assert_array_equal(out, [1, 6, 2**31 - 1])

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            ScatterPeArray(0)


class TestGatherPeArrayStatic:
    def _app(self):
        g = erdos_renyi_graph(64, 256, seed=0)
        return PageRank(g)

    def test_static_accumulation_matches_flat(self, rng):
        app = self._app()
        gpes = GatherPeArray(4, 16, routed=False)
        gpes.reset(app, 0)
        dst = rng.integers(0, 16, 100)
        vals = rng.integers(1, 10, 100).astype(np.int64)
        gpes.absorb(app, dst, vals)
        merged = merge_buffers(app, gpes.drain())
        expected = np.zeros(16, dtype=np.int64)
        np.add.at(expected, dst, vals)
        np.testing.assert_array_equal(merged, expected)

    def test_buffers_initialised_to_identity(self):
        app = self._app()
        gpes = GatherPeArray(4, 8, routed=False)
        gpes.reset(app, 0)
        for buf in gpes.drain():
            assert np.all(buf == app.gather_identity)


class TestGatherPeArrayRouted:
    def _app(self):
        g = erdos_renyi_graph(64, 256, seed=0)
        return PageRank(g)

    def test_routed_distinct_partitions(self, rng):
        app = self._app()
        gpes = GatherPeArray(4, 16, routed=True)
        bases = [0, 16, 32, 48]
        gpes.reset(app, bases)
        dst = rng.integers(0, 64, 200)
        vals = np.ones(200, dtype=np.int64)
        gpes.absorb(app, dst, vals)
        buffers = gpes.drain()
        expected = np.zeros(64, dtype=np.int64)
        np.add.at(expected, dst, vals)
        for i, base in enumerate(bases):
            np.testing.assert_array_equal(
                buffers[i], expected[base : base + 16]
            )

    def test_routed_nonconsecutive_bases(self, rng):
        app = self._app()
        gpes = GatherPeArray(4, 16, routed=True)
        gpes.reset(app, [0, 48])  # skip partitions in between
        dst = np.concatenate(
            [rng.integers(0, 16, 50), rng.integers(48, 64, 50)]
        )
        vals = np.ones(100, dtype=np.int64)
        gpes.absorb(app, dst, vals)
        buffers = gpes.drain()
        assert len(buffers) == 2
        assert buffers[0].sum() == 50 and buffers[1].sum() == 50

    def test_too_many_bases_raise(self):
        app = self._app()
        gpes = GatherPeArray(2, 8, routed=True)
        with pytest.raises(ValueError):
            gpes.reset(app, [0, 8, 16])

    def test_unsorted_bases_raise(self):
        app = self._app()
        gpes = GatherPeArray(2, 8, routed=True)
        with pytest.raises(ValueError):
            gpes.reset(app, [8, 0])


class TestMerger:
    def test_cycles_log_depth(self):
        assert merger_cycles(8) == 3 * 4.0
        assert merger_cycles(2) == 4.0

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            merger_cycles(0)

    def test_merge_min_semantics(self):
        g = erdos_renyi_graph(8, 16, seed=0)
        app = BreadthFirstSearch(g)
        bufs = [
            np.array([5, 9], dtype=np.int64),
            np.array([7, 2], dtype=np.int64),
            np.array([6, 6], dtype=np.int64),
        ]
        out = merge_buffers(app, bufs)
        np.testing.assert_array_equal(out, [5, 2])

    def test_merge_empty_raises(self):
        g = erdos_renyi_graph(8, 16, seed=0)
        with pytest.raises(ValueError):
            merge_buffers(BreadthFirstSearch(g), [])
