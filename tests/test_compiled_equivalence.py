"""Differential equivalence harness: compiled core vs interpreted oracle.

The compiled simulation core's contract is *bit-identity*, not
approximate agreement: every ``PartitionTiming``, every per-iteration
cycle list and every ``RunReport`` digest must match the interpreted
reference path exactly, across both devices, all five apps, all graph
families, with and without fault plans attached.  Anything weaker would
let the compiled path drift away from the oracle that every other
subsystem (conformance, chaos, fleet) is validated against.

Tier-1 keeps a representative slice of the matrix; the ``slow`` marker
carries the full device × app × graph-family sweep plus hypothesis
properties over random plans and channel-parameter perturbations.
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings

from repro.compiled import (
    CompiledEngine,
    compile_plan,
    compiled_enabled,
    configure_compiled,
    evaluate_plan,
    plan_engine,
)
from repro.core.system import SystemSimulator
from repro.faults import FaultPlan, LatencySpikeFault, PipelineStallFault
from repro.faults.resilience import ResiliencePolicy
from repro.graph.generators import (
    erdos_renyi_graph,
    power_law_graph,
    rmat_graph,
)
from repro.hbm.channel import HbmChannelModel
from repro.perf import configure_cache, get_cache
from repro.perf.simcache import DEFAULT_CACHE_ENTRIES

from tests.helpers import make_framework
from tests.strategies import channel_param_perturbations, scheduling_plans

ALL_APPS = ("pagerank", "bfs", "closeness", "sssp", "wcc")
DEVICES = ("U280", "U50")


@pytest.fixture(autouse=True)
def fresh_state():
    """Each test starts with compiled ON and an empty cache, and leaves
    the process-global switches at their defaults."""
    configure_cache(enabled=True, max_entries=DEFAULT_CACHE_ENTRIES)
    get_cache().clear()
    configure_compiled(True)
    yield
    configure_cache(enabled=True, max_entries=DEFAULT_CACHE_ENTRIES)
    get_cache().clear()
    configure_compiled(True)


# ---------------------------------------------------------------------------
# Matrix plumbing
# ---------------------------------------------------------------------------
def family_graph(family: str, seed: int = 3, weighted: bool = False):
    if family == "rmat":
        graph = rmat_graph(9, 8, seed=seed)
    elif family == "powerlaw":
        graph = power_law_graph(600, 4000, seed=seed)
    elif family == "uniform":
        graph = erdos_renyi_graph(500, 3000, seed=seed)
    else:
        raise ValueError(family)
    if weighted:
        from repro.check.runner import with_random_weights

        graph = with_random_weights(graph, seed=seed)
    return graph


def dispatch(framework, app: str, graph, **kwargs):
    """Run ``app`` by name (mirrors the chaos campaign's dispatch)."""
    if app == "pagerank":
        return framework.run_pagerank(graph, **kwargs)
    if app == "bfs":
        return framework.run_bfs(graph, root=0, **kwargs)
    if app == "closeness":
        return framework.run_closeness(graph, root=0, **kwargs)
    if app == "sssp":
        from repro.apps.sssp import SingleSourceShortestPaths

        pre = framework.preprocess(graph)
        root = pre.to_internal_vertex(0)
        return framework.run(
            pre,
            lambda g: SingleSourceShortestPaths(g, root=root),
            **kwargs,
        )
    if app == "wcc":
        from repro.apps.wcc import WeaklyConnectedComponents, symmetrized

        return framework.run(
            symmetrized(graph), WeaklyConnectedComponents, **kwargs
        )
    raise ValueError(app)


def run_report_digest(run) -> str:
    """SHA-256 over everything a RunReport asserts about the run.

    Floats enter via ``repr`` (which round-trips float64 exactly), the
    property array via raw bytes — so two digests agree iff the reports
    are bit-identical.
    """
    h = hashlib.sha256()
    h.update(repr((
        run.app_name,
        run.graph_name,
        run.accel_label,
        run.frequency_mhz,
        run.iterations,
        run.total_cycles,
        run.edges_per_iteration,
        run.converged,
    )).encode())
    for report in run.iteration_reports:
        h.update(repr((
            report.little_cycles,
            report.big_cycles,
            report.apply_cycles,
            report.writer_cycles,
        )).encode())
    if run.props is not None:
        props = np.ascontiguousarray(run.props)
        h.update(str(props.dtype).encode())
        h.update(props.tobytes())
    return h.hexdigest()


def run_both_paths(app, device, graph, **kwargs):
    """One run per path, each from a cold cache; returns both reports."""
    reports = []
    for compiled in (True, False):
        get_cache().clear()
        configure_compiled(compiled)
        framework = make_framework(platform=device)
        reports.append(
            dispatch(framework, app, graph, max_iterations=8, **kwargs)
        )
    configure_compiled(True)
    return reports


# ---------------------------------------------------------------------------
# Tier-1: representative slice of the matrix
# ---------------------------------------------------------------------------
class TestRunReportEquivalence:
    @pytest.mark.parametrize("device", DEVICES)
    def test_pagerank_digest_identical_on_both_devices(self, device):
        graph = family_graph("rmat")
        compiled, interpreted = run_both_paths("pagerank", device, graph)
        assert run_report_digest(compiled) == run_report_digest(interpreted)

    @pytest.mark.parametrize("app", ALL_APPS)
    def test_every_app_digest_identical(self, app):
        graph = family_graph("rmat", weighted=(app == "sssp"))
        compiled, interpreted = run_both_paths(app, "U280", graph)
        assert run_report_digest(compiled) == run_report_digest(interpreted)

    @pytest.mark.parametrize("family", ("rmat", "powerlaw", "uniform"))
    def test_every_graph_family_digest_identical(self, family):
        graph = family_graph(family)
        compiled, interpreted = run_both_paths("pagerank", "U50", graph)
        assert run_report_digest(compiled) == run_report_digest(interpreted)

    def test_fault_active_run_digest_identical(self):
        # An active latency spike forces faulty iterations through the
        # interpreted walk on both paths; clean iterations before/after
        # still take the compiled engine when it is on.  The reports —
        # including health accounting — must not notice the difference.
        plan = FaultPlan(
            seed=7,
            latency_spikes=(
                LatencySpikeFault(
                    channel=0,
                    onset_cycle=0.0,
                    duration_cycles=5e3,
                    multiplier=4.0,
                ),
            ),
        )
        graph = family_graph("rmat")
        compiled, interpreted = run_both_paths(
            "pagerank", "U280", graph,
            fault_plan=plan, resilience=ResiliencePolicy(),
        )
        assert run_report_digest(compiled) == run_report_digest(interpreted)
        assert compiled.health.to_dict() == interpreted.health.to_dict()

    def test_stall_fault_rng_stream_unperturbed(self):
        # Stall triggering consumes injector randomness; if the compiled
        # path consumed (or skipped) draws the interpreted path makes,
        # retry counts would diverge.  Identical health reports pin it.
        plan = FaultPlan(
            seed=11,
            stalls=(
                PipelineStallFault(
                    probability=0.1, onset_cycle=0.0, pipeline=None
                ),
            ),
        )
        graph = family_graph("uniform")
        compiled, interpreted = run_both_paths(
            "pagerank", "U280", graph,
            fault_plan=plan, resilience=ResiliencePolicy(),
        )
        assert run_report_digest(compiled) == run_report_digest(interpreted)
        assert compiled.health.to_dict() == interpreted.health.to_dict()


class TestPartitionTimingEquivalence:
    @pytest.mark.parametrize("device", DEVICES)
    def test_every_node_matches_interpreted_compute(self, device):
        framework = make_framework(platform=device)
        pre = framework.preprocess(family_graph("powerlaw"))
        sim = SystemSimulator(pre.plan, framework.platform)
        cplan = compile_plan(pre.plan)
        timings = evaluate_plan(cplan, sim.channel)
        configure_cache(enabled=False)  # force interpreted recompute
        for pipe, tasks in enumerate(pre.plan.little_tasks):
            for order, task in enumerate(tasks):
                node = cplan.little_by_pipe[pipe][order]
                expected, _ = sim._little.execute(task.partition)
                assert timings[node.index] == expected
        for pipe, tasks in enumerate(pre.plan.big_tasks):
            for order, task in enumerate(tasks):
                node = cplan.big_by_pipe[pipe][order]
                expected, _ = sim._big.execute(task.partitions)
                assert timings[node.index] == expected

    def test_busy_sums_replay_interpreted_order(self):
        framework = make_framework()
        pre = framework.preprocess(family_graph("rmat"))
        sim = SystemSimulator(pre.plan, framework.platform)
        report = sim._compute_timing(pre.graph.num_vertices)
        little, big = plan_engine(pre.plan).busy_cycles(sim.channel)
        assert little == report.little_cycles
        assert big == report.big_cycles


class TestCacheComposition:
    def test_compiled_run_populates_interpreted_cache_keys(self):
        # The compiled timing pass seeds the content-addressed entries
        # under the interpreted memo's exact keys.  A fully-compiled run
        # no longer performs per-task lookups at all (the functional
        # pass is compiled too), so the consumer here is an interpreted
        # run over the same graph: its per-task ``_timing`` lookups must
        # hit the compiled-published entries.
        graph = family_graph("rmat")
        framework = make_framework()
        assert compiled_enabled()
        framework.run_pagerank(graph, max_iterations=5)
        stats = get_cache().stats()
        assert stats["entries"] > 0
        configure_compiled(False)
        framework.run_pagerank(graph, max_iterations=2)
        stats = get_cache().stats()
        assert stats["hits"] > 0
        assert stats["hit_rate"] > 0.5

    def test_engine_is_compiled_once_per_plan(self):
        framework = make_framework()
        pre = framework.preprocess(family_graph("rmat"))
        engine = plan_engine(pre.plan)
        assert plan_engine(pre.plan) is engine
        assert isinstance(engine, CompiledEngine)

    def test_memoized_evaluation_reused_across_simulators(self):
        framework = make_framework()
        pre = framework.preprocess(family_graph("rmat"))
        channel = HbmChannelModel()
        engine = plan_engine(pre.plan)
        first = engine.timings(channel)
        second = engine.timings(channel)
        assert second is first


# ---------------------------------------------------------------------------
# Slow: the full matrix + properties
# ---------------------------------------------------------------------------
@pytest.mark.slow
class TestFullMatrix:
    @pytest.mark.parametrize("device", DEVICES)
    @pytest.mark.parametrize("app", ALL_APPS)
    @pytest.mark.parametrize("family", ("rmat", "powerlaw", "uniform"))
    def test_digest_identical(self, device, app, family):
        graph = family_graph(family, weighted=(app == "sssp"))
        compiled, interpreted = run_both_paths(app, device, graph)
        assert run_report_digest(compiled) == run_report_digest(interpreted)

    @pytest.mark.parametrize("device", DEVICES)
    @pytest.mark.parametrize("app", ("pagerank", "wcc"))
    def test_fault_active_digest_identical(self, device, app):
        plan = FaultPlan(
            seed=23,
            latency_spikes=(
                LatencySpikeFault(
                    channel=1,
                    onset_cycle=0.0,
                    duration_cycles=1e4,
                    multiplier=6.0,
                ),
            ),
        )
        graph = family_graph("powerlaw")
        compiled, interpreted = run_both_paths(
            app, device, graph,
            fault_plan=plan, resilience=ResiliencePolicy(),
        )
        assert run_report_digest(compiled) == run_report_digest(interpreted)


@pytest.mark.slow
class TestProperties:
    @given(gp=scheduling_plans(), params=channel_param_perturbations())
    @settings(max_examples=40, deadline=None)
    def test_compiled_plan_matches_interpreted_under_any_params(
        self, gp, params
    ):
        _graph, plan = gp
        channel = HbmChannelModel(params)
        cplan = compile_plan(plan)
        timings = evaluate_plan(cplan, channel)
        configure_cache(enabled=False)
        from repro.arch.big_pipeline import BigPipelineSim
        from repro.arch.little_pipeline import LittlePipelineSim

        little_sim = LittlePipelineSim(plan.accelerator.pipeline, channel)
        big_sim = BigPipelineSim(plan.accelerator.pipeline, channel)
        for pipe, tasks in enumerate(plan.little_tasks):
            for order, task in enumerate(tasks):
                node = cplan.little_by_pipe[pipe][order]
                expected, _ = little_sim.execute(task.partition)
                assert timings[node.index] == expected
        for pipe, tasks in enumerate(plan.big_tasks):
            for order, task in enumerate(tasks):
                node = cplan.big_by_pipe[pipe][order]
                expected, _ = big_sim.execute(task.partitions)
                assert timings[node.index] == expected

    @given(
        gp=scheduling_plans(),
        params_a=channel_param_perturbations(),
        params_b=channel_param_perturbations(),
    )
    @settings(max_examples=25, deadline=None)
    def test_incremental_param_switch_equals_cold_evaluation(
        self, gp, params_a, params_b
    ):
        from repro.compiled import IncrementalEvaluator

        _graph, plan = gp
        inc = IncrementalEvaluator(plan, params=params_a)
        inc.set_channel_params(params_b)
        cold = IncrementalEvaluator(plan, params=params_b)
        assert inc.timings == cold.timings
