"""Tests for the Apply and Writer module simulators."""

import numpy as np
import pytest

from repro.apps.pagerank import PageRank
from repro.arch.apply import APPLY_VERTICES_PER_CYCLE, ApplySim
from repro.arch.writer import WriterSim
from repro.graph.generators import erdos_renyi_graph


class TestApply:
    def test_cycles_linear_in_vertices(self, channel):
        sim = ApplySim(channel)
        c1 = sim.cycles(10_000)
        c2 = sim.cycles(20_000)
        assert c2 - c1 == pytest.approx(10_000 / APPLY_VERTICES_PER_CYCLE)

    def test_zero_vertices_free(self, channel):
        assert ApplySim(channel).cycles(0) == 0.0

    def test_includes_stream_latency(self, channel):
        assert ApplySim(channel).cycles(1) > 1.0

    def test_run_applies_udf(self, channel):
        g = erdos_renyi_graph(32, 128, seed=0)
        app = PageRank(g)
        sim = ApplySim(channel)
        old = app.init_props()
        acc = np.zeros(32, dtype=np.int64)
        out = sim.run(app, old, acc)
        np.testing.assert_array_equal(out, app.apply(old, acc))


class TestWriter:
    def test_cycles_track_blocks(self, channel):
        sim = WriterSim(channel)
        # 1600 vertices * 4 B = 100 blocks.
        assert sim.cycles(1600) == pytest.approx(
            channel.params.min_latency + 100.0
        )

    def test_zero_vertices_free(self, channel):
        assert WriterSim(channel).cycles(0) == 0.0

    def test_monotonic(self, channel):
        sim = WriterSim(channel)
        assert sim.cycles(100) <= sim.cycles(10_000)
