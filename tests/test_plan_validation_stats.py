"""Tests for plan validation and the skew-exponent estimator."""

import numpy as np
import pytest

from repro.graph.stats import estimate_skew_exponent
from repro.sched.plan import BigTask, SchedulingPlan
from repro.sched.scheduler import build_schedule


class TestPlanValidate:
    def test_scheduler_output_validates(self, rmat_partitions, perf_model):
        plan = build_schedule(rmat_partitions, perf_model, 4)
        plan.validate(expected_edges=rmat_partitions.graph.num_edges)

    def test_wrong_edge_total_rejected(self, rmat_partitions, perf_model):
        plan = build_schedule(rmat_partitions, perf_model, 4)
        with pytest.raises(ValueError, match="edges"):
            plan.validate(expected_edges=1)

    def test_pipeline_count_mismatch_rejected(
        self, rmat_partitions, perf_model
    ):
        plan = build_schedule(rmat_partitions, perf_model, 4)
        broken = SchedulingPlan(
            accelerator=plan.accelerator,
            little_tasks=plan.little_tasks[:-1],
            big_tasks=plan.big_tasks,
        )
        with pytest.raises(ValueError, match="task lists"):
            broken.validate()

    def test_oversized_big_group_rejected(
        self, rmat_partitions, perf_model, config
    ):
        plan = build_schedule(rmat_partitions, perf_model, 4)
        parts = rmat_partitions.nonempty()[: config.n_gpe + 1]
        bad_task = BigTask(partitions=list(parts), estimated_cycles=1.0)
        broken = SchedulingPlan(
            accelerator=plan.accelerator,
            little_tasks=plan.little_tasks,
            big_tasks=[[bad_task]] + plan.big_tasks[1:],
        )
        with pytest.raises(ValueError, match="N_gpe"):
            broken.validate()

    def test_unsorted_group_bases_rejected(
        self, rmat_partitions, perf_model
    ):
        plan = build_schedule(rmat_partitions, perf_model, 4)
        parts = rmat_partitions.nonempty()
        bad_task = BigTask(
            partitions=[parts[3], parts[2]], estimated_cycles=1.0
        )
        broken = SchedulingPlan(
            accelerator=plan.accelerator,
            little_tasks=plan.little_tasks,
            big_tasks=[[bad_task]] + plan.big_tasks[1:],
        )
        with pytest.raises(ValueError, match="ascending"):
            broken.validate()


class TestSkewEstimator:
    def test_power_law_recovered(self):
        rng = np.random.default_rng(0)
        # Pareto tail with alpha = 2.5.
        degrees = (rng.pareto(1.5, 50_000) + 1.0) * 2
        alpha = estimate_skew_exponent(degrees)
        assert 2.0 < alpha < 3.2

    def test_uniform_degrees_look_steep(self, small_uniform):
        # Poisson-like distributions have thin tails -> large exponent.
        alpha = estimate_skew_exponent(small_uniform.in_degrees())
        assert alpha > 3.0

    def test_rmat_heavier_tailed_than_uniform(
        self, small_rmat, small_uniform
    ):
        a_rmat = estimate_skew_exponent(small_rmat.in_degrees())
        a_uni = estimate_skew_exponent(small_uniform.in_degrees())
        assert a_rmat < a_uni

    def test_degenerate_input(self):
        assert np.isnan(estimate_skew_exponent(np.zeros(5)))

    def test_constant_degrees(self):
        assert estimate_skew_exponent(np.full(100, 7.0)) == float("inf")

    def test_dataset_standins_are_skewed(self):
        from repro.graph.datasets import load_dataset

        for key in ("HD", "PK"):
            g = load_dataset(key, scale=0.01, seed=1)
            alpha = estimate_skew_exponent(g.in_degrees())
            assert alpha < 3.5, key
