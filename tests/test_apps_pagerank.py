"""Tests for the PageRank GAS app."""

import numpy as np
import pytest

from repro.apps.pagerank import PageRank
from repro.apps.reference import pagerank_reference
from repro.graph.generators import erdos_renyi_graph


@pytest.fixture()
def app(small_rmat):
    return PageRank(small_rmat)


class TestUdfs:
    def test_scatter_is_identity(self, app):
        props = np.array([1, 2, 3], dtype=np.int64)
        np.testing.assert_array_equal(app.scatter(props, None), props)

    def test_gather_adds(self, app):
        out = app.gather(np.array([1, 2]), np.array([10, 20]))
        np.testing.assert_array_equal(out, [11, 22])

    def test_gather_at_accumulates_duplicates(self, app):
        buf = np.zeros(3, dtype=np.int64)
        app.gather_at(buf, np.array([1, 1, 2]), np.array([5, 6, 7]))
        np.testing.assert_array_equal(buf, [0, 11, 7])

    def test_apply_adds_base_and_damps(self, small_rmat):
        app = PageRank(small_rmat, damping=0.85)
        acc = np.zeros(small_rmat.num_vertices, dtype=np.int64)
        out = app.apply(app.init_props(), acc)
        # With zero accumulation the new rank is just the base term.
        expected = app.base_fx // app.divisor
        np.testing.assert_array_equal(out, expected)


class TestRunSemantics:
    def _gas_iterate(self, app, iterations):
        graph = app.graph
        props = app.init_props()
        for _ in range(iterations):
            acc = np.zeros(graph.num_vertices, dtype=np.int64)
            updates = app.scatter(props[graph.src], None)
            app.gather_at(acc, graph.dst, updates)
            props = app.apply(props, acc)
        return props

    def test_matches_float_reference(self, small_rmat):
        app = PageRank(small_rmat)
        props = self._gas_iterate(app, 10)
        ranks = app.finalize(props)
        ref = pagerank_reference(small_rmat, iterations=10)
        assert np.max(np.abs(ranks - ref)) < 1e-5

    def test_ranks_sum_near_one_minus_dangling(self, small_rmat):
        app = PageRank(small_rmat)
        ranks = app.finalize(self._gas_iterate(app, 10))
        assert 0.3 < ranks.sum() <= 1.01

    def test_convergence_detection(self):
        g = erdos_renyi_graph(50, 500, seed=1)
        app = PageRank(g, tolerance=1e-4)
        a = self._gas_iterate(app, 30)
        b = self._gas_iterate(app, 31)
        assert app.has_converged(a, b, 31)

    def test_zero_out_degree_handled(self):
        # Vertex 2 has no out-edges; divisor falls back to 1.
        from repro.graph.coo import Graph

        g = Graph(3, [0, 1], [1, 2])
        app = PageRank(g)
        assert app.divisor[2] == 1

    def test_init_props_uniform(self, small_rmat):
        app = PageRank(small_rmat)
        props = app.init_props()
        ranks = app.finalize(props)
        # The pre-divide floors at fixed-point resolution, so the error
        # bound scales with the out-degree divisor.
        atol = float(app.divisor.max()) * app.fmt.resolution
        np.testing.assert_allclose(
            ranks, 1.0 / small_rmat.num_vertices, atol=atol
        )

    def test_finalize_restores_rank_scale(self, small_rmat):
        app = PageRank(small_rmat)
        props = app.init_props()
        # finalize multiplies the pre-divided score back by out-degree
        manual = app.fmt.to_float(props * app.divisor)
        np.testing.assert_array_equal(app.finalize(props), manual)
