"""Tests for the Shuhai-style latency benchmark and the Eq. 4 fit."""

import numpy as np
import pytest

from repro.hbm.channel import HbmChannelModel, HbmTimingParams
from repro.hbm.latency import (
    LatencyFit,
    calibrate_channel,
    fit_linear_latency,
    run_latency_benchmark,
)


class TestBenchmark:
    def test_returns_aligned_arrays(self, channel):
        strides, lat = run_latency_benchmark(channel)
        assert strides.shape == lat.shape

    def test_deterministic_in_seed(self, channel):
        _, a = run_latency_benchmark(channel, seed=3)
        _, b = run_latency_benchmark(channel, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_tracks_ground_truth(self, channel):
        strides, lat = run_latency_benchmark(channel, jitter_cycles=0.0)
        np.testing.assert_allclose(lat, channel.request_latency(strides))


class TestFit:
    def test_recovers_slope_without_jitter(self):
        ch = HbmChannelModel(
            HbmTimingParams(
                min_latency=20,
                max_latency=10_000,  # effectively no plateau
                latency_per_stride_byte=0.01,
            )
        )
        strides = np.array([0.0, 100, 200, 400, 800])
        fit = fit_linear_latency(strides, ch.request_latency(strides))
        assert fit.a == pytest.approx(0.01, rel=0.05)

    def test_bounds_bracket_samples(self, channel):
        strides, lat = run_latency_benchmark(channel)
        fit = fit_linear_latency(strides, lat)
        assert fit.lower_bound == pytest.approx(lat.min())
        assert fit.upper_bound == pytest.approx(lat.max())

    def test_prediction_clamped(self, channel):
        fit = calibrate_channel(channel)
        assert fit.latency(10**12) <= fit.upper_bound + 1e-9
        assert fit.latency(0) >= fit.lower_bound - 1e-9

    def test_too_few_points_raise(self):
        with pytest.raises(ValueError):
            fit_linear_latency(np.array([1.0]), np.array([2.0]))

    def test_negative_slope_clamped_to_zero(self):
        fit = fit_linear_latency(
            np.array([0.0, 100.0, 200.0]), np.array([30.0, 20.0, 10.0])
        )
        assert fit.a == 0.0


class TestEndToEnd:
    def test_calibration_accuracy(self, channel):
        """The fitted model predicts ground-truth latency within ~15%
        across the benchmark stride range (the Eq. 4 premise)."""
        fit = calibrate_channel(channel)
        strides = np.array([64.0, 512, 2048, 8192])
        truth = channel.request_latency(strides)
        pred = fit.latency(strides)
        assert np.all(np.abs(pred - truth) / truth < 0.15)

    def test_fit_is_dataclass_roundtrippable(self, channel):
        fit = calibrate_channel(channel)
        clone = LatencyFit(fit.a, fit.b, fit.lower_bound, fit.upper_bound)
        assert clone.latency(1000) == fit.latency(1000)
