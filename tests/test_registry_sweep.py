"""Tests for the app registry and the design-space sensitivity sweep."""

import numpy as np
import pytest

from repro.apps.registry import available_apps, get_app_spec
from repro.arch.config import PipelineConfig
from repro.model.sweep import sensitivity_report, sweep_parameter


class TestRegistry:
    def test_all_apps_listed(self):
        assert available_apps() == [
            "bfs", "closeness", "delta-pagerank", "pagerank",
            "radii", "sssp", "wcc",
        ]

    def test_lookup_case_insensitive(self):
        assert get_app_spec("PageRank").name == "pagerank"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            get_app_spec("pagerange")

    def test_build_rootless(self, small_rmat):
        app = get_app_spec("pagerank").build(small_rmat)
        assert app.name == "PageRank"

    def test_build_with_root(self, small_rmat):
        app = get_app_spec("bfs").build(small_rmat, root=5)
        assert app.root == 5

    def test_weighted_requirement_enforced(self, small_rmat):
        with pytest.raises(ValueError, match="weighted"):
            get_app_spec("sssp").build(small_rmat)

    def test_runtime_executes_registry_apps(self, small_rmat):
        from repro.runtime.host import init_accelerator

        handle = init_accelerator(
            "U280",
            pipeline=PipelineConfig(gather_buffer_vertices=512),
            num_pipelines=4,
        )
        handle.load_graph(small_rmat)
        run = handle.execute("wcc")
        assert run.converged
        run = handle.execute("radii")
        assert run.result["diameter_estimate"] >= 1


class TestSweep:
    @pytest.fixture(scope="class")
    def base(self):
        return PipelineConfig(gather_buffer_vertices=512)

    def test_sweep_returns_one_point_per_value(self, small_rmat, base):
        points = sweep_parameter(
            small_rmat, base, "n_gpe", [4, 8], num_pipelines=4
        )
        assert [p.value for p in points] == [4, 8]
        for p in points:
            assert p.makespan_cycles > 0
            assert "L" in p.combo_label

    def test_buffer_size_changes_partition_count(self, small_rmat, base):
        points = sweep_parameter(
            small_rmat, base, "gather_buffer_vertices", [256, 1024],
            num_pipelines=4,
        )
        assert points[0].num_partitions > points[1].num_partitions

    def test_more_pes_never_hurt_makespan_much(self, small_rmat, base):
        points = sweep_parameter(
            small_rmat, base, "n_spe", [4, 8], num_pipelines=4
        )
        # Doubling Scatter PEs cannot slow the estimate down.
        assert points[1].makespan_cycles <= 1.05 * points[0].makespan_cycles

    def test_unknown_parameter_raises(self, small_rmat, base):
        with pytest.raises(ValueError, match="unknown"):
            sweep_parameter(small_rmat, base, "n_quux", [1])

    def test_speedup_metric(self, small_rmat, base):
        a, b = sweep_parameter(
            small_rmat, base, "n_gpe", [4, 8], num_pipelines=4
        )
        assert b.speedup_over(a) == pytest.approx(
            a.makespan_cycles / b.makespan_cycles
        )

    def test_sensitivity_report_covers_knobs(self, small_rmat, base):
        report = sensitivity_report(small_rmat, base, num_pipelines=4)
        assert set(report) == {
            "n_spe", "n_gpe", "gather_buffer_vertices", "pingpong_bytes",
        }
        for points in report.values():
            assert len(points) == 4
