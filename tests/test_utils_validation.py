"""Tests for validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_1d,
    check_nonnegative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckNonnegative:
    def test_accepts_zero(self):
        check_nonnegative("n", 0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative("n", -1)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        check_probability("p", ok)

    @pytest.mark.parametrize("bad", [-0.01, 1.01, 2.0])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError):
            check_probability("p", bad)


class TestCheckArray1d:
    def test_passes_through_1d(self):
        out = check_array_1d("a", [1, 2, 3])
        assert out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            check_array_1d("a", np.zeros((2, 2)))
