"""Tests for the CSR view."""

import numpy as np
import pytest

from repro.graph.coo import Graph
from repro.graph.csr import CsrGraph


class TestFromCoo:
    def test_roundtrip_edge_set(self, tiny_graph):
        csr = CsrGraph.from_coo(tiny_graph)
        back = csr.to_coo()
        orig = sorted(zip(tiny_graph.src.tolist(), tiny_graph.dst.tolist()))
        rt = sorted(zip(back.src.tolist(), back.dst.tolist()))
        assert orig == rt

    def test_neighbors_match_out_edges(self, tiny_graph):
        csr = CsrGraph.from_coo(tiny_graph)
        for v in range(6):
            expected = sorted(
                tiny_graph.dst[tiny_graph.src == v].tolist()
            )
            assert sorted(csr.neighbors(v).tolist()) == expected

    def test_transpose_neighbors_are_in_edges(self, tiny_graph):
        csr = CsrGraph.from_coo(tiny_graph, transpose=True)
        for v in range(6):
            expected = sorted(
                tiny_graph.src[tiny_graph.dst == v].tolist()
            )
            assert sorted(csr.neighbors(v).tolist()) == expected

    def test_degrees(self, tiny_graph):
        csr = CsrGraph.from_coo(tiny_graph)
        for v in range(6):
            assert csr.degree(v) == tiny_graph.out_degrees()[v]

    def test_num_edges_preserved(self, small_rmat):
        csr = CsrGraph.from_coo(small_rmat)
        assert csr.num_edges == small_rmat.num_edges

    def test_weights_follow(self):
        g = Graph(3, [0, 1, 2], [1, 2, 0], weights=[10, 20, 30])
        csr = CsrGraph.from_coo(g)
        assert csr.weights is not None
        assert csr.weights.sum() == 60


class TestValidation:
    def test_indptr_size_checked(self):
        with pytest.raises(ValueError, match="V\\+1"):
            CsrGraph(3, np.array([0, 1]), np.array([0]))

    def test_indptr_tail_checked(self):
        with pytest.raises(ValueError, match="number of edges"):
            CsrGraph(2, np.array([0, 1, 5]), np.array([0]))
