"""Integration tests: U50 end-to-end, extreme channels, degenerate graphs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.reference import bfs_reference, pagerank_reference
from repro.arch.config import PipelineConfig
from repro.core.framework import ReGraph
from repro.graph.coo import Graph
from repro.hbm.channel import HbmChannelModel, HbmTimingParams


class TestU50EndToEnd:
    @pytest.fixture(scope="class")
    def framework(self):
        return ReGraph(
            "U50",
            pipeline=PipelineConfig(gather_buffer_vertices=256),
            num_pipelines=6,
        )

    def test_pagerank_correct_on_u50(self, framework, small_powerlaw):
        run = framework.run_pagerank(small_powerlaw, max_iterations=6)
        ref = pagerank_reference(small_powerlaw, iterations=run.iterations)
        assert np.max(np.abs(run.result - ref)) < 1e-3

    def test_u50_plan_is_conformant(
        self, framework, small_powerlaw, conformance
    ):
        conformance.check_run(framework.preprocess(small_powerlaw), framework)

    def test_u50_buffer_default(self):
        fw = ReGraph("U50")
        assert fw.pipeline.gather_buffer_vertices == 32_768

    def test_u50_port_limit(self, framework):
        assert framework.platform.max_total_pipelines == 12


class TestExtremeChannels:
    @pytest.mark.parametrize(
        "params",
        [
            HbmTimingParams(max_outstanding=1),
            HbmTimingParams(min_latency=4, max_latency=8),
            HbmTimingParams(min_latency=100, max_latency=400),
            HbmTimingParams(latency_per_stride_byte=0.0),
        ],
    )
    def test_pipelines_survive_channel_extremes(
        self, params, small_rmat, config
    ):
        from repro.arch.big_pipeline import BigPipelineSim
        from repro.arch.little_pipeline import LittlePipelineSim
        from repro.graph.partition import partition_graph
        from repro.graph.reorder import degree_based_grouping

        channel = HbmChannelModel(params)
        pset = partition_graph(
            degree_based_grouping(small_rmat).graph, 512
        )
        parts = pset.nonempty()[:2]
        big = BigPipelineSim(config, channel)
        little = LittlePipelineSim(config, channel)
        tb, _ = big.execute(parts)
        tl, _ = little.execute(parts[0])
        assert tb.total_cycles > 0 and tl.total_cycles > 0

    def test_slower_memory_never_speeds_up(self, small_rmat, config):
        from repro.arch.big_pipeline import BigPipelineSim
        from repro.graph.partition import partition_graph
        from repro.graph.reorder import degree_based_grouping

        pset = partition_graph(
            degree_based_grouping(small_rmat).graph, 512
        )
        group = pset.nonempty()[-8:]
        fast = BigPipelineSim(
            config, HbmChannelModel(HbmTimingParams(max_outstanding=32))
        )
        slow = BigPipelineSim(
            config, HbmChannelModel(HbmTimingParams(max_outstanding=2))
        )
        t_fast, _ = fast.execute(group)
        t_slow, _ = slow.execute(group)
        assert t_slow.total_cycles >= t_fast.total_cycles


class TestDegenerateGraphs:
    def _run_bfs(self, graph):
        fw = ReGraph(
            "U280",
            pipeline=PipelineConfig(gather_buffer_vertices=8),
            num_pipelines=2,
        )
        return fw.run_bfs(graph, root=0)

    def test_self_loops(self):
        g = Graph(4, [0, 1, 2, 0], [0, 1, 2, 1], name="loops")
        run = self._run_bfs(g)
        np.testing.assert_array_equal(run.props, bfs_reference(g, 0))

    def test_duplicate_edges(self):
        g = Graph(4, [0, 0, 0, 1], [1, 1, 1, 2], name="dups")
        run = self._run_bfs(g)
        np.testing.assert_array_equal(run.props, bfs_reference(g, 0))

    def test_single_edge_graph(self):
        g = Graph(2, [0], [1], name="one-edge")
        run = self._run_bfs(g)
        np.testing.assert_array_equal(run.props, [0, 1])

    def test_star_in_one_partition(self):
        # Every edge targets vertex 0: worst-case gather conflicts.
        g = Graph(16, list(range(1, 16)), [0] * 15, name="star")
        run = self._run_bfs(g)
        np.testing.assert_array_equal(run.props, bfs_reference(g, 0))


class TestFaultScenarios:
    """End-to-end fault injection: the accelerator still gets the
    right answer while the health report shows what was absorbed."""

    @pytest.fixture(scope="class")
    def framework(self):
        return ReGraph(
            "U50",
            pipeline=PipelineConfig(gather_buffer_vertices=256),
            num_pipelines=6,
        )

    @pytest.fixture(scope="class")
    def pre(self, framework, small_powerlaw):
        return framework.preprocess(small_powerlaw)

    def test_dead_channel_mid_run_still_converges(
        self, framework, pre, small_powerlaw
    ):
        from repro.faults import DeadChannelFault, FaultPlan

        plan = FaultPlan(seed=7, dead_channels=(
            DeadChannelFault(channel=0, onset_cycle=6000.0),
        ))
        run = framework.run_pagerank(
            pre, max_iterations=30, fault_plan=plan
        )
        assert run.converged
        health = run.health
        assert health.replans >= 1
        assert health.degraded_pipelines == ["little0"]
        assert health.initial_label != health.final_label
        ref = pagerank_reference(small_powerlaw, iterations=run.iterations)
        assert np.max(np.abs(run.result - ref)) < 1e-3

    def test_detected_bit_flips_are_retried(
        self, framework, pre, small_powerlaw
    ):
        from repro.faults import BitFlipFault, FaultPlan

        plan = FaultPlan(seed=9, bit_flips=(
            BitFlipFault(probability=0.05),
        ))
        run = framework.run_pagerank(pre, max_iterations=20, fault_plan=plan)
        clean = framework.run_pagerank(pre, max_iterations=20)
        health = run.health
        assert health.retries > 0
        assert health.checkpoint_restores == health.retries
        assert all(f.category == "bit-flip" for f in health.faults)
        # Retried iterations resume from checkpoints: the fixed point
        # is bit-identical to the fault-free run.
        np.testing.assert_array_equal(run.props, clean.props)

    def test_dead_channel_plus_flips_acceptance(
        self, framework, pre, small_powerlaw
    ):
        """The ISSUE acceptance scenario: a dead channel *and* a 1%
        detectable bit-flip rate, absorbed within 1e-3 of reference."""
        from repro.faults import BitFlipFault, DeadChannelFault, FaultPlan

        plan = FaultPlan(
            seed=7,
            dead_channels=(DeadChannelFault(channel=0, onset_cycle=6000.0),),
            bit_flips=(BitFlipFault(probability=0.01),),
        )
        run = framework.run_pagerank(pre, max_iterations=30, fault_plan=plan)
        assert run.converged
        health = run.health
        assert health.fault_count >= 2
        assert health.replans >= 1 and health.checkpoint_restores >= 1
        ref = pagerank_reference(small_powerlaw, iterations=run.iterations)
        assert np.max(np.abs(run.result - ref)) < 1e-3

    def test_degraded_pagerank_matches_reference(
        self, framework, pre, small_powerlaw
    ):
        from repro.faults import DeadChannelFault, FaultPlan

        # Kill a channel from cycle 0: the whole run executes degraded.
        plan = FaultPlan(dead_channels=(DeadChannelFault(channel=2),))
        run = framework.run_pagerank(pre, max_iterations=30, fault_plan=plan)
        assert run.health.final_label != "4L2B"
        ref = pagerank_reference(small_powerlaw, iterations=run.iterations)
        assert np.max(np.abs(run.result - ref)) < 1e-3

    def test_bfs_survives_pinned_stalls(self, framework, pre, small_powerlaw):
        from repro.faults import FaultPlan, PipelineStallFault

        plan = FaultPlan(seed=4, stalls=(
            PipelineStallFault(probability=0.2, pipeline=1),
        ))
        run = framework.run_bfs(pre, root=0, fault_plan=plan)
        ref = bfs_reference(small_powerlaw, 0)
        np.testing.assert_array_equal(run.props, ref)


class TestSchedulerProperty:
    @given(
        st.integers(10, 200),
        st.integers(20, 400),
        st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_plans_conserve_edges_on_random_graphs(self, n, m, pipes):
        from repro.graph.generators import erdos_renyi_graph
        from repro.graph.partition import partition_graph
        from repro.model.calibrate import calibrate_performance_model
        from repro.sched.scheduler import build_schedule

        config = PipelineConfig(gather_buffer_vertices=16)
        channel = HbmChannelModel()
        model = calibrate_performance_model(config, channel)
        graph = erdos_renyi_graph(n, m, seed=n * m)
        pset = partition_graph(graph, config.partition_vertices)
        plan = build_schedule(pset, model, pipes)
        plan.validate(expected_edges=graph.num_edges)
