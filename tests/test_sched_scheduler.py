"""Tests for the end-to-end scheduler and the plan structure."""

import pytest

from repro.sched.scheduler import build_schedule


class TestBuildSchedule:
    def test_plan_covers_all_edges(self, rmat_partitions, perf_model):
        plan = build_schedule(rmat_partitions, perf_model, 6)
        assert plan.total_edges() == rmat_partitions.graph.num_edges

    def test_pipeline_counts_sum(self, rmat_partitions, perf_model):
        plan = build_schedule(rmat_partitions, perf_model, 6)
        accel = plan.accelerator
        assert accel.num_little + accel.num_big == 6
        assert len(plan.little_tasks) == accel.num_little
        assert len(plan.big_tasks) == accel.num_big

    def test_mixed_combo_chosen_for_skewed_graph(
        self, rmat_partitions, perf_model
    ):
        plan = build_schedule(rmat_partitions, perf_model, 6)
        assert not plan.accelerator.is_homogeneous

    def test_dense_and_sparse_disjoint(self, rmat_partitions, perf_model):
        plan = build_schedule(rmat_partitions, perf_model, 6)
        assert not set(plan.dense_indices) & set(plan.sparse_indices)

    def test_forced_homogeneous_little(self, rmat_partitions, perf_model):
        plan = build_schedule(
            rmat_partitions, perf_model, 6, forced_combo=(6, 0)
        )
        assert plan.accelerator.label == "6L0B"
        assert plan.big_tasks == []
        assert plan.total_edges() == rmat_partitions.graph.num_edges

    def test_forced_homogeneous_big(self, rmat_partitions, perf_model):
        plan = build_schedule(
            rmat_partitions, perf_model, 6, forced_combo=(0, 6)
        )
        assert plan.accelerator.label == "0L6B"
        assert plan.little_tasks == []
        assert plan.total_edges() == rmat_partitions.graph.num_edges

    def test_forced_combo_must_sum(self, rmat_partitions, perf_model):
        with pytest.raises(ValueError):
            build_schedule(rmat_partitions, perf_model, 6, forced_combo=(3, 4))

    def test_all_forced_combos_cover_edges(self, rmat_partitions, perf_model):
        for m in range(7):
            plan = build_schedule(
                rmat_partitions, perf_model, 6, forced_combo=(m, 6 - m)
            )
            assert plan.total_edges() == rmat_partitions.graph.num_edges


class TestPlanMetrics:
    def test_makespan_positive(self, rmat_partitions, perf_model):
        plan = build_schedule(rmat_partitions, perf_model, 6)
        assert plan.estimated_makespan > 0

    def test_balance_ratio_at_least_one(self, rmat_partitions, perf_model):
        plan = build_schedule(rmat_partitions, perf_model, 6)
        assert plan.balance_ratio >= 1.0

    def test_model_guided_beats_or_matches_worst_forced(
        self, rmat_partitions, perf_model
    ):
        chosen = build_schedule(rmat_partitions, perf_model, 6)
        makespans = []
        for m in range(7):
            plan = build_schedule(
                rmat_partitions, perf_model, 6, forced_combo=(m, 6 - m)
            )
            makespans.append(plan.estimated_makespan)
        assert chosen.estimated_makespan <= max(makespans)

    def test_cycle_estimates_match_task_sums(self, rmat_partitions, perf_model):
        plan = build_schedule(rmat_partitions, perf_model, 6)
        for tasks, est in zip(plan.little_tasks, plan.little_cycle_estimates):
            assert est == pytest.approx(
                sum(t.estimated_cycles for t in tasks)
            )
