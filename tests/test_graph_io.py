"""Tests for edge-list I/O."""

import numpy as np
import pytest

from repro.graph.coo import Graph
from repro.graph.io import read_edge_list, write_edge_list


class TestRoundtrip:
    def test_unweighted(self, tiny_graph, tmp_path):
        path = tmp_path / "g.el"
        write_edge_list(tiny_graph, path)
        back = read_edge_list(path)
        assert back.num_vertices == tiny_graph.num_vertices
        np.testing.assert_array_equal(back.src, tiny_graph.src)
        np.testing.assert_array_equal(back.dst, tiny_graph.dst)

    def test_weighted(self, tmp_path):
        g = Graph(4, [0, 1, 2], [1, 2, 3], weights=[7, 8, 9])
        path = tmp_path / "w.el"
        write_edge_list(g, path)
        back = read_edge_list(path)
        np.testing.assert_array_equal(back.weights, [7, 8, 9])

    def test_header_preserves_isolated_tail_vertices(self, tmp_path):
        g = Graph(10, [0], [1])  # vertices 2..9 isolated
        path = tmp_path / "iso.el"
        write_edge_list(g, path)
        back = read_edge_list(path)
        assert back.num_vertices == 10


class TestHeaderless:
    def test_infers_vertex_count(self, tmp_path):
        path = tmp_path / "raw.el"
        path.write_text("0 3\n2 1\n")
        g = read_edge_list(path)
        assert g.num_vertices == 4
        assert g.num_edges == 2

    def test_explicit_vertex_count_wins(self, tmp_path):
        path = tmp_path / "raw.el"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_vertices=100)
        assert g.num_vertices == 100

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.el"
        path.write_text("# vertices: 3\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mygraph.el"
        path.write_text("0 1\n")
        assert read_edge_list(path).name == "mygraph"
