"""Tests for accelerator enumeration (Sec. V-D)."""

from repro.arch.config import PipelineConfig
from repro.arch.platform import get_platform
from repro.core.accelerator import (
    enumerate_accelerators,
    feasible_accelerators,
)


class TestEnumeration:
    def test_u280_yields_fifteen_combos(self):
        accels = enumerate_accelerators(get_platform("U280"))
        assert len(accels) == 15  # M = 0..14

    def test_u50_yields_thirteen_combos(self):
        accels = enumerate_accelerators(get_platform("U50"))
        assert len(accels) == 13  # M = 0..12

    def test_all_sum_to_npip(self):
        for accel in enumerate_accelerators(get_platform("U280")):
            assert accel.total_pipelines == 14

    def test_labels_unique(self):
        labels = [
            a.label for a in enumerate_accelerators(get_platform("U280"))
        ]
        assert len(set(labels)) == len(labels)

    def test_override_total(self):
        accels = enumerate_accelerators(
            get_platform("U280"), total_pipelines=4
        )
        assert len(accels) == 5

    def test_platform_buffer_inherited(self):
        accels = enumerate_accelerators(get_platform("U50"))
        assert accels[0].pipeline.gather_buffer_vertices == 32_768


class TestFeasibility:
    def test_all_regraph_combos_feasible_on_u280(self):
        # The paper's core scalability claim: every combination fits.
        platform = get_platform("U280")
        pipeline = PipelineConfig(gather_buffer_vertices=65_536)
        assert len(feasible_accelerators(platform, pipeline)) == 15

    def test_tight_cap_filters(self):
        platform = get_platform("U280")
        pipeline = PipelineConfig(gather_buffer_vertices=65_536)
        few = feasible_accelerators(platform, pipeline, max_lut=0.25)
        assert len(few) < 15
