"""Tests for subgraph extraction and edge sampling."""

import numpy as np
import pytest

from repro.graph.subgraph import (
    induced_subgraph,
    sample_edges,
    top_degree_core,
)


class TestSampleEdges:
    def test_fraction_roughly_respected(self, small_rmat):
        sampled = sample_edges(small_rmat, 0.25, seed=1)
        ratio = sampled.num_edges / small_rmat.num_edges
        assert 0.2 < ratio < 0.3

    def test_vertex_set_preserved(self, small_rmat):
        sampled = sample_edges(small_rmat, 0.5, seed=1)
        assert sampled.num_vertices == small_rmat.num_vertices

    def test_edges_are_subset(self, small_powerlaw):
        sampled = sample_edges(small_powerlaw, 0.3, seed=2)
        original = set(
            zip(small_powerlaw.src.tolist(), small_powerlaw.dst.tolist())
        )
        for s, d in zip(sampled.src.tolist(), sampled.dst.tolist()):
            assert (s, d) in original

    def test_weights_follow(self, tiny_graph):
        g = tiny_graph.with_weights(np.arange(8))
        sampled = sample_edges(g, 0.99, seed=0)
        assert sampled.weights is not None
        assert sampled.weights.size == sampled.num_edges

    def test_deterministic(self, small_rmat):
        a = sample_edges(small_rmat, 0.4, seed=9)
        b = sample_edges(small_rmat, 0.4, seed=9)
        assert np.array_equal(a.src, b.src)

    def test_zero_fraction_rejected(self, small_rmat):
        with pytest.raises(ValueError):
            sample_edges(small_rmat, 0.0, seed=0)

    def test_invalid_fraction_rejected(self, small_rmat):
        with pytest.raises(ValueError):
            sample_edges(small_rmat, 1.5)


class TestInducedSubgraph:
    def test_tiny_graph_slice(self, tiny_graph):
        # Vertices {0, 1, 3}: edges 0->1, 0->3 survive (renamed).
        sub = induced_subgraph(tiny_graph, np.array([0, 1, 3]))
        assert sub.num_vertices == 3
        pairs = set(zip(sub.src.tolist(), sub.dst.tolist()))
        assert pairs == {(0, 1), (0, 2)}

    def test_full_vertex_set_identity(self, tiny_graph):
        sub = induced_subgraph(
            tiny_graph, np.arange(tiny_graph.num_vertices)
        )
        assert sub.num_edges == tiny_graph.num_edges

    def test_ids_compacted(self, small_rmat):
        sub = induced_subgraph(small_rmat, np.array([100, 2000, 4095]))
        if sub.num_edges:
            assert sub.src.max() < 3

    def test_empty_vertex_set_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            induced_subgraph(tiny_graph, np.array([], dtype=np.int64))

    def test_out_of_range_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            induced_subgraph(tiny_graph, np.array([99]))


class TestTopDegreeCore:
    def test_core_is_denser(self, small_rmat):
        core = top_degree_core(small_rmat, small_rmat.num_vertices // 8)
        assert core.average_degree > small_rmat.average_degree / 4
        assert core.num_vertices == small_rmat.num_vertices // 8

    def test_invalid_size_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            top_degree_core(tiny_graph, 0)
        with pytest.raises(ValueError):
            top_degree_core(tiny_graph, 100)

    def test_core_contains_heaviest_vertex(self, small_rmat):
        hub = int(np.argmax(small_rmat.in_degrees()))
        core_vertices = np.argsort(small_rmat.in_degrees())[::-1][:100]
        assert hub in core_vertices
