"""Differential oracles and the conformance runner on seed inputs.

The tentpole acceptance test lives here: ``run_conformance`` (the engine
behind ``repro check``) must pass cleanly for every app on every seed
skew class, and a report carrying a failure must say so loudly.
"""

import dataclasses

import numpy as np
import pytest

from repro.check import (
    ORACLE_APPS,
    ConformanceReport,
    OracleResult,
    Violation,
    functional_oracle,
    model_oracle,
    run_conformance,
    seed_graphs,
    with_random_weights,
)
from repro.errors import ConformanceError
from repro.graph.generators import rmat_graph

from tests.helpers import make_framework


@pytest.fixture(scope="module")
def framework():
    return make_framework("U280", buffer_vertices=256, num_pipelines=4)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(9, 8, seed=2, name="oracle-rmat")


class TestSeedGraphs:
    def test_quick_suite_is_one_graph(self):
        assert len(seed_graphs(quick=True)) == 1

    def test_full_suite_spans_skew_classes(self):
        names = {g.name for g in seed_graphs()}
        assert names == {"rmat10", "pl1200", "er800"}

    def test_deterministic_for_a_seed(self):
        a, b = seed_graphs(seed=5), seed_graphs(seed=5)
        for ga, gb in zip(a, b):
            np.testing.assert_array_equal(ga.src, gb.src)
            np.testing.assert_array_equal(ga.dst, gb.dst)

    def test_with_random_weights_is_deterministic(self, graph):
        wa = with_random_weights(graph, seed=3)
        wb = with_random_weights(graph, seed=3)
        np.testing.assert_array_equal(wa.weights, wb.weights)
        assert wa.weights.min() >= 1


class TestFunctionalOracle:
    @pytest.mark.parametrize("app", ["pagerank", "bfs", "closeness", "wcc"])
    def test_app_matches_reference(self, app, graph, framework):
        result = functional_oracle(
            graph, app, framework,
            max_iterations=5 if app == "pagerank" else None,
        )
        assert result.passed, str(result)

    def test_sssp_matches_reference(self, graph, framework):
        weighted = with_random_weights(graph, seed=1)
        result = functional_oracle(weighted, "sssp", framework)
        assert result.passed, str(result)

    def test_sssp_without_weights_rejected(self, graph, framework):
        with pytest.raises(ConformanceError):
            functional_oracle(graph, "sssp", framework)

    def test_unknown_app_rejected(self, graph, framework):
        with pytest.raises(ConformanceError):
            functional_oracle(graph, "nope", framework)


class TestModelOracle:
    def test_seed_plan_within_bands(self, graph, framework):
        pre = framework.preprocess(graph)
        results = model_oracle(pre.plan, framework.channel)
        assert {r.oracle for r in results} == {
            "model-vs-sim/task", "model-vs-sim/makespan"
        }
        assert all(r.passed for r in results), [str(r) for r in results]


class TestRunConformance:
    def test_quick_run_passes(self):
        report = run_conformance(
            device="U280", apps=["pagerank", "bfs"], quick=True
        )
        assert report.passed
        # 2 model results + 2 functional results on the one quick graph.
        assert report.num_checks == 4
        report.raise_on_failure()

    def test_unknown_app_rejected_before_simulation(self):
        with pytest.raises(ConformanceError):
            run_conformance(apps=["pagerank", "nope"])

    def test_custom_graphs_respected(self, graph):
        report = run_conformance(apps=["bfs"], graphs=[graph])
        assert report.passed
        assert all(graph.name in r.subject for r in report.results[2:])

    def test_tightened_bands_fail(self, graph):
        # A zero-width tolerance band must trip the model oracle: the
        # detection path, not just the happy path, is what certifies the
        # checker.
        from repro.check import DEFAULT_BANDS

        impossible = dataclasses.replace(
            DEFAULT_BANDS, model_task_rel=0.0, model_makespan_rel=0.0
        )
        report = run_conformance(
            apps=["bfs"], graphs=[graph], bands=impossible
        )
        assert not report.passed
        with pytest.raises(ConformanceError):
            report.raise_on_failure()


class TestConformanceReport:
    def test_failed_result_fails_report(self):
        report = ConformanceReport(device="U280", apps=("bfs",))
        report.results.append(OracleResult(
            "functional", "bfs@g", passed=False, max_error=3.0,
            detail="3 mismatches",
        ))
        assert not report.passed
        with pytest.raises(ConformanceError, match="bfs@g"):
            report.raise_on_failure()

    def test_violation_fails_report(self):
        report = ConformanceReport(device="U280", apps=())
        report.violations.append(
            Violation("no-overlap", "little[0]", "tasks overlap")
        )
        assert not report.passed
        assert report.rows()[-1][2] == "FAIL"

    def test_clean_report_rows_say_ok(self):
        report = ConformanceReport(device="U280", apps=("bfs",))
        report.results.append(OracleResult(
            "functional", "bfs@g", passed=True, max_error=0.0, detail="exact",
        ))
        assert report.passed
        assert report.rows() == [
            ("functional", "bfs@g", "ok", "exact")
        ]
        report.raise_on_failure()


class TestOracleAppRegistry:
    def test_cli_exposes_every_oracle_app(self):
        assert set(ORACLE_APPS) == {
            "pagerank", "bfs", "closeness", "sssp", "wcc"
        }
