"""Tests for the Big and Little pipeline simulators (Fig. 3 / Fig. 9)."""

import numpy as np
import pytest

from repro.apps.pagerank import PageRank
from repro.arch.big_pipeline import BigPipelineSim
from repro.arch.config import PipelineConfig
from repro.arch.little_pipeline import LittlePipelineSim
from repro.arch.timing import combine_timings
from repro.graph.partition import Partition, partition_graph


@pytest.fixture()
def big(config, channel):
    return BigPipelineSim(config, channel)


@pytest.fixture()
def little(config, channel):
    return LittlePipelineSim(config, channel)


def _dense_and_sparse(rmat_partitions):
    parts = rmat_partitions.nonempty()
    return parts[0], parts[-1]


class TestTimingStructure:
    def test_store_and_switch_charged(self, big, little, rmat_partitions, config):
        dense, _ = _dense_and_sparse(rmat_partitions)
        tb, _ = big.execute([dense])
        tl, _ = little.execute(dense)
        assert tb.store_cycles == config.store_cycles
        assert tb.switch_cycles == config.switch_cycles
        assert tl.switch_cycles == config.switch_cycles

    def test_total_is_sum_of_parts(self, little, rmat_partitions):
        dense, _ = _dense_and_sparse(rmat_partitions)
        t, _ = little.execute(dense)
        assert t.total_cycles == (
            t.compute_cycles + t.store_cycles + t.switch_cycles
        )

    def test_empty_partition_costs_only_overheads(self, big, little):
        empty = Partition(0, 0, 512, np.zeros(0, dtype=np.int64),
                          np.zeros(0, dtype=np.int64))
        tb, _ = big.execute([empty])
        tl, _ = little.execute(empty)
        assert tb.compute_cycles == 0.0
        assert tl.compute_cycles == 0.0
        assert tb.total_cycles > 0 and tl.total_cycles > 0

    def test_combine_timings(self, little, rmat_partitions):
        dense, sparse = _dense_and_sparse(rmat_partitions)
        t1, _ = little.execute(dense)
        t2, _ = little.execute(sparse)
        combined = combine_timings([t1, t2])
        assert combined.num_edges == t1.num_edges + t2.num_edges
        assert combined.total_cycles == pytest.approx(
            t1.total_cycles + t2.total_cycles
        )

    def test_cycles_per_edge(self, little, rmat_partitions):
        dense, _ = _dense_and_sparse(rmat_partitions)
        t, _ = little.execute(dense)
        assert t.cycles_per_edge > 0


class TestFig9Crossover:
    """The paper's central micro-claim: Little wins dense, Big wins sparse."""

    def test_little_faster_on_dense_group(self, big, little, rmat_partitions, config):
        parts = rmat_partitions.nonempty()[: config.n_gpe]
        tb, _ = big.execute(parts)
        tl_total = sum(little.execute(p)[0].total_cycles for p in parts)
        assert tl_total < tb.total_cycles

    def test_big_faster_on_sparse_group(self, big, little, rmat_partitions, config):
        parts = rmat_partitions.nonempty()[-config.n_gpe :]
        tb, _ = big.execute(parts)
        tl_total = sum(little.execute(p)[0].total_cycles for p in parts)
        assert tb.total_cycles < tl_total

    def test_big_amortises_switch_overhead(self, big, rmat_partitions, config):
        parts = rmat_partitions.nonempty()[-config.n_gpe :]
        grouped, _ = big.execute(parts)
        separate = sum(big.execute([p])[0].total_cycles for p in parts)
        assert grouped.total_cycles < separate


class TestBigPipeline:
    def test_group_size_cap(self, big, rmat_partitions, config):
        parts = rmat_partitions.nonempty()
        too_many = parts[: config.n_gpe + 1]
        if len(too_many) > config.n_gpe:
            with pytest.raises(ValueError):
                big.execute(too_many)

    def test_data_routing_disabled_rejects_groups(self, config, channel, rmat_partitions):
        cfg = PipelineConfig(
            gather_buffer_vertices=config.gather_buffer_vertices,
            data_routing=False,
        )
        sim = BigPipelineSim(cfg, channel)
        parts = rmat_partitions.nonempty()[:2]
        with pytest.raises(ValueError, match="routing"):
            sim.execute(parts)

    def test_empty_group_rejected(self, big):
        with pytest.raises(ValueError):
            big.execute([])

    def test_functional_needs_props(self, big, rmat_partitions, dbg_rmat):
        app = PageRank(dbg_rmat.graph)
        with pytest.raises(ValueError, match="src_props"):
            big.execute([rmat_partitions.nonempty()[0]], app=app)

    def test_functional_outputs_match_direct_gather(
        self, big, rmat_partitions, dbg_rmat, config
    ):
        app = PageRank(dbg_rmat.graph)
        props = app.init_props()
        parts = rmat_partitions.nonempty()[-config.n_gpe :]
        _, outputs = big.execute(parts, app=app, src_props=props)
        for partition, (lo, hi, buf) in zip(parts, outputs):
            expected = np.zeros(hi - lo, dtype=np.int64)
            np.add.at(expected, partition.dst - lo, props[partition.src])
            np.testing.assert_array_equal(buf, expected)

    def test_loader_stats_accessible(self, big, rmat_partitions):
        stats = big.loader_stats(rmat_partitions.nonempty()[:2])
        assert stats.requests_issued > 0


class TestLittlePipeline:
    def test_functional_output_matches_direct_gather(
        self, little, rmat_partitions, dbg_rmat
    ):
        app = PageRank(dbg_rmat.graph)
        props = app.init_props()
        partition = rmat_partitions.nonempty()[0]
        _, (lo, hi, buf) = little.execute(partition, app=app, src_props=props)
        expected = np.zeros(hi - lo, dtype=np.int64)
        np.add.at(expected, partition.dst - lo, props[partition.src])
        np.testing.assert_array_equal(buf, expected)

    def test_slice_timings_additive_within_bound(self, little, rmat_partitions):
        # Splitting a partition must not make the total compute cheaper
        # than the whole (fixed costs are per execution).
        p = rmat_partitions.nonempty()[0]
        whole, _ = little.execute(p)
        mid = p.num_edges // 2
        a, _ = little.execute(p.slice(0, mid))
        b, _ = little.execute(p.slice(mid, p.num_edges))
        assert a.compute_cycles + b.compute_cycles >= 0.8 * whole.compute_cycles

    def test_pingpong_stats_accessible(self, little, rmat_partitions):
        stats = little.pingpong_stats(rmat_partitions.nonempty()[0])
        assert stats.blocks_fetched > 0


class TestGatherServiceVectorization:
    """The vectorized Gather service model must match the original
    per-lane loop (kept as ``_gather_service_reference``) exactly."""

    def test_matches_reference_on_real_partitions(self, big, rmat_partitions, config):
        parts = rmat_partitions.nonempty()[: config.n_gpe]
        lanes = np.concatenate([
            np.full(p.num_edges, i, dtype=np.int64)
            for i, p in enumerate(parts)
        ])
        np.testing.assert_array_equal(
            big._gather_service(lanes, len(parts)),
            big._gather_service_reference(lanes, len(parts)),
        )

    @pytest.mark.parametrize("num_edges,num_lanes,seed", [
        (0, 1, 0),       # empty
        (1, 1, 1),       # single tuple
        (7, 3, 2),       # partial trailing set
        (64, 4, 3),      # exact multiple of the set size
        (257, 8, 4),     # window boundary straddled
        (1000, 2, 5),    # skewed two-lane dispatch
    ])
    def test_matches_reference_on_random_dispatch(self, big, num_edges, num_lanes, seed):
        rng = np.random.default_rng(seed)
        lanes = rng.integers(0, num_lanes, size=num_edges, dtype=np.int64)
        np.testing.assert_array_equal(
            big._gather_service(lanes, num_lanes),
            big._gather_service_reference(lanes, num_lanes),
        )

    def test_single_hot_lane_bounds_throughput(self, big):
        # All tuples on one lane: the busiest-lane rate equals the full
        # set size, so service can never beat one-tuple-per-cycle.
        lanes = np.zeros(512, dtype=np.int64)
        service = big._gather_service(lanes, 4)
        np.testing.assert_array_equal(
            service, big._gather_service_reference(lanes, 4)
        )
        assert service.min() >= 1.0


class TestDeterminism:
    def test_timing_reproducible(self, big, little, rmat_partitions):
        p = rmat_partitions.nonempty()[1]
        t1, _ = little.execute(p)
        t2, _ = little.execute(p)
        assert t1.total_cycles == t2.total_cycles
        g1, _ = big.execute([p])
        g2, _ = big.execute([p])
        assert g1.total_cycles == g2.total_cycles
