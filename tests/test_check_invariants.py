"""The trace invariant checker catches corrupted traces and bad models.

Every test here corrupts one thing — an event timeline, a coverage
record, a bandwidth figure, a model coefficient — and asserts the
checker names the violated rule.  The clean-trace tests pin down that
the seed configurations themselves are conformant (no false positives).
"""

import dataclasses

import pytest

from repro.arch.trace import ExecutionTrace, TraceEvent, trace_plan
from repro.check import (
    DEFAULT_BANDS,
    ConformanceChecker,
    assert_trace_invariants,
    check_channel_bandwidth,
    check_coverage,
    check_monotone_cycles,
    check_no_overlap,
    check_resource_feasibility,
    check_trace,
    model_oracle,
)
from repro.errors import ConformanceError
from repro.graph.coo import EDGE_BYTES
from repro.graph.generators import rmat_graph
from repro.sched.scheduler import build_schedule

from tests.helpers import make_framework


@pytest.fixture(scope="module")
def framework():
    return make_framework("U280", buffer_vertices=256, num_pipelines=4)


@pytest.fixture(scope="module")
def pre(framework):
    return framework.preprocess(rmat_graph(10, 8, seed=3, name="inv-rmat"))


@pytest.fixture(scope="module")
def trace(pre, framework):
    return trace_plan(pre.plan, framework.channel)


def _rules(violations):
    return {v.rule for v in violations}


class TestCleanTrace:
    def test_seed_plan_is_conformant(self, trace, pre, framework):
        violations = check_trace(
            trace,
            plan=pre.plan,
            platform=framework.platform,
            channel=framework.channel,
        )
        assert violations == []

    def test_assert_helper_is_silent(self, trace, pre, framework):
        assert_trace_invariants(
            trace,
            plan=pre.plan,
            platform=framework.platform,
            channel=framework.channel,
        )

    def test_checker_accepts_seed_run(self, pre, framework):
        ConformanceChecker().check_run(pre, framework)


class TestCorruptedTimeline:
    def test_overlap_detected(self):
        trace = ExecutionTrace(events=[
            TraceEvent("little[0]", "a", 0.0, 100.0),
            TraceEvent("little[0]", "b", 50.0, 150.0),
        ])
        assert _rules(check_no_overlap(trace)) == {"no-overlap"}

    def test_same_pipeline_back_to_back_ok(self):
        trace = ExecutionTrace(events=[
            TraceEvent("little[0]", "a", 0.0, 100.0),
            TraceEvent("little[0]", "b", 100.0, 150.0),
        ])
        assert check_no_overlap(trace) == []

    def test_distinct_pipelines_may_overlap(self):
        trace = ExecutionTrace(events=[
            TraceEvent("little[0]", "a", 0.0, 100.0),
            TraceEvent("big[0]", "b", 10.0, 90.0),
        ])
        assert check_no_overlap(trace) == []

    def test_negative_start_detected(self):
        trace = ExecutionTrace(
            events=[TraceEvent("little[0]", "a", -5.0, 10.0)]
        )
        assert _rules(check_monotone_cycles(trace)) == {"monotone-cycles"}

    def test_nonpositive_duration_detected(self):
        trace = ExecutionTrace(
            events=[TraceEvent("little[0]", "a", 30.0, 30.0)]
        )
        assert _rules(check_monotone_cycles(trace)) == {"monotone-cycles"}

    def test_nonfinite_cycles_detected(self):
        trace = ExecutionTrace(
            events=[TraceEvent("little[0]", "a", 0.0, float("inf"))]
        )
        assert _rules(check_monotone_cycles(trace)) == {"monotone-cycles"}


class TestCorruptedCoverage:
    def test_dropped_task_detected(self, trace, pre):
        corrupted = ExecutionTrace(events=trace.events[:-1])
        assert "coverage" in _rules(check_coverage(corrupted, pre.plan))

    def test_duplicated_task_detected(self, trace, pre):
        dup = trace.events[0]
        shifted = dataclasses.replace(
            dup,
            start_cycle=trace.makespan + 1.0,
            end_cycle=trace.makespan + 1.0 + dup.duration,
        )
        corrupted = ExecutionTrace(events=trace.events + [shifted])
        assert "coverage" in _rules(check_coverage(corrupted, pre.plan))

    def test_wrong_partition_detected(self, trace, pre):
        first = trace.events[0]
        swapped = dataclasses.replace(
            first,
            partition_indices=tuple(
                i + 1000 for i in first.partition_indices
            ),
        )
        corrupted = ExecutionTrace(events=[swapped] + trace.events[1:])
        assert "coverage" in _rules(check_coverage(corrupted, pre.plan))

    def test_wrong_edge_count_detected(self, trace, pre):
        first = trace.events[0]
        inflated = dataclasses.replace(first, num_edges=first.num_edges + 7)
        corrupted = ExecutionTrace(events=[inflated] + trace.events[1:])
        assert "coverage" in _rules(check_coverage(corrupted, pre.plan))

    def test_unplanned_pipeline_detected(self, trace, pre):
        rogue = TraceEvent("little[99]", "ghost", 0.0, 10.0)
        corrupted = ExecutionTrace(events=trace.events + [rogue])
        assert "coverage" in _rules(check_coverage(corrupted, pre.plan))


class TestBandwidthCeiling:
    def test_impossible_throughput_detected(self, framework):
        # 10,000 edges in 10 cycles: orders of magnitude beyond one
        # pseudo-channel's sequential peak.
        trace = ExecutionTrace(events=[
            TraceEvent(
                "little[0]", "burst", 0.0, 10.0,
                partition_indices=(0,), num_edges=10_000,
            )
        ])
        violations = check_channel_bandwidth(trace, framework.channel)
        assert _rules(violations) == {"channel-bandwidth"}

    def test_exactly_at_ceiling_passes(self, framework):
        edges = 4096
        floor = framework.channel.min_cycles_for_bytes(edges * EDGE_BYTES)
        trace = ExecutionTrace(events=[
            TraceEvent(
                "little[0]", "peak", 0.0, floor,
                partition_indices=(0,), num_edges=edges,
            )
        ])
        assert check_channel_bandwidth(trace, framework.channel) == []

    def test_zero_edge_events_ignored(self, framework):
        trace = ExecutionTrace(
            events=[TraceEvent("little[0]", "idle", 0.0, 1.0)]
        )
        assert check_channel_bandwidth(trace, framework.channel) == []


class TestResourceFeasibility:
    def test_seed_plan_fits(self, pre, framework):
        assert check_resource_feasibility(pre.plan, framework.platform) == []

    def test_shrunken_budget_detected(self, pre, framework):
        tight = dataclasses.replace(DEFAULT_BANDS, max_lut_util=1e-6)
        violations = check_resource_feasibility(
            pre.plan, framework.platform, bands=tight
        )
        assert _rules(violations) == {"resource-feasibility"}


class TestMisScaledModel:
    """A corrupted model coefficient must fail the differential oracle."""

    def test_clean_model_agrees(self, pre, framework):
        results = model_oracle(pre.plan, framework.channel)
        assert all(r.passed for r in results)

    def test_inflated_constant_detected(self, pre, framework):
        bad_model = dataclasses.replace(
            framework.model,
            const_little=framework.model.const_little * 50,
            const_big=framework.model.const_big * 50,
        )
        bad_plan = build_schedule(
            pre.pset, bad_model, framework.num_pipelines
        )
        results = model_oracle(bad_plan, framework.channel)
        assert any(not r.passed for r in results)

    def test_checker_raises_on_bad_model(self, pre, framework):
        bad_model = dataclasses.replace(
            framework.model,
            const_little=framework.model.const_little * 50,
            const_big=framework.model.const_big * 50,
        )
        bad_plan = build_schedule(
            pre.pset, bad_model, framework.num_pipelines
        )
        checker = ConformanceChecker()
        with pytest.raises(ConformanceError):
            checker.check_model(bad_plan, framework.channel)


class TestAssertHelper:
    def test_lists_every_violation(self, trace, pre, framework):
        rogue = TraceEvent("little[99]", "ghost", -1.0, -0.5)
        corrupted = ExecutionTrace(events=trace.events + [rogue])
        with pytest.raises(ConformanceError) as excinfo:
            assert_trace_invariants(
                corrupted, plan=pre.plan, channel=framework.channel
            )
        message = str(excinfo.value)
        assert "monotone-cycles" in message
        assert "coverage" in message

    def test_is_an_assertion_error(self):
        # pytest renders ConformanceError as a plain test failure.
        assert issubclass(ConformanceError, AssertionError)
