"""Tests for incremental (delta) PageRank."""

import numpy as np
import pytest

from repro.apps.delta_pagerank import DeltaPageRank
from repro.apps.reference import pagerank_reference
from repro.graph.generators import erdos_renyi_graph


def _gas_run(app, max_iterations=200):
    graph = app.graph
    props = app.init_props()
    for i in range(max_iterations):
        acc = np.zeros(graph.num_vertices, dtype=np.int64)
        updates = app.scatter(props[graph.src], None)
        app.gather_at(acc, graph.dst, updates)
        new_props = app.apply(props, acc)
        if app.has_converged(props, new_props, i + 1):
            return new_props
        props = new_props
    return props


class TestDeltaPageRank:
    def test_converges_to_classic_fixpoint(self, small_uniform):
        app = DeltaPageRank(small_uniform, tolerance=1e-9)
        props = _gas_run(app)
        ranks = app.finalize(props)
        ref = pagerank_reference(small_uniform, iterations=100)
        assert np.max(np.abs(ranks - ref)) < 1e-4

    def test_on_skewed_graph(self, small_rmat):
        app = DeltaPageRank(small_rmat, tolerance=1e-9)
        ranks = app.finalize(_gas_run(app))
        ref = pagerank_reference(small_rmat, iterations=100)
        assert np.max(np.abs(ranks - ref)) < 1e-3

    def test_pending_mass_decays_geometrically(self):
        g = erdos_renyi_graph(500, 3000, seed=1)
        app = DeltaPageRank(g, tolerance=1e-9)
        props = app.init_props()
        peaks = []
        for _ in range(20):
            acc = np.zeros(g.num_vertices, dtype=np.int64)
            app.gather_at(acc, g.dst, app.scatter(props[g.src], None))
            props = app.apply(props, acc)
            peaks.append(int((np.abs(props) * app.divisor).max()))
        # After the initial mixing, pending deltas shrink by ~damping
        # per sweep.
        assert peaks[-1] < peaks[2] * 0.2

    def test_traffic_quantises_to_zero_at_convergence(self):
        g = erdos_renyi_graph(300, 1500, seed=4)
        app = DeltaPageRank(g, tolerance=1e-9)
        props = _gas_run(app, max_iterations=300)
        # Fixed-point quantisation eventually zeroes settled deltas.
        assert app.traffic_fraction(props) < 1.0

    def test_converged_flag_via_tolerance(self):
        g = erdos_renyi_graph(200, 1200, seed=2)
        app = DeltaPageRank(g, tolerance=1e-4)
        props = _gas_run(app, max_iterations=100)
        assert app.has_converged(None, props, 0)

    def test_on_simulated_system(self, dbg_rmat, rmat_partitions, perf_model):
        from repro.arch.platform import get_platform
        from repro.core.system import SystemSimulator
        from repro.sched.scheduler import build_schedule

        plan = build_schedule(rmat_partitions, perf_model, 4)
        sim = SystemSimulator(plan, get_platform("U280"))
        app = DeltaPageRank(dbg_rmat.graph, tolerance=1e-9)
        run = sim.run(app, max_iterations=100)
        ref = pagerank_reference(dbg_rmat.graph, iterations=100)
        assert np.max(np.abs(run.result - ref)) < 1e-3
        assert run.converged
