"""Serving kill-restart chaos cells in tier-1 size.

Small streams (fsync traded away for speed — the crash here is
``abandon()``, not a real SIGKILL, so the WAL contract isn't what is
under test): a clean crash, a crash with a torn traffic bundle, and a
crash with a torn SQLite WAL must all recover to the uninterrupted
reference digest with zero acknowledged jobs lost.
"""

import pytest

from repro.chaos.fleet_soak import FleetSoakConfig
from repro.chaos.serve_kill import (
    ServeKillConfig,
    run_serve_kill,
    tear_wal,
)
from repro.errors import UserInputError
from repro.faults.plan import StorageFault

SOAK = FleetSoakConfig(jobs=5, seed=13, replicas=("U280", "U50"))


def _cell(**overrides):
    kwargs = dict(soak=SOAK, crash_after_results=2, fsync=False)
    kwargs.update(overrides)
    return ServeKillConfig(**kwargs)


def test_clean_crash_recovers_to_the_reference_digest(tmp_path):
    result = run_serve_kill(_cell(), tmp_path)
    assert result.acked == SOAK.jobs  # every job was acknowledged
    assert result.results_at_crash >= 2
    assert result.lost_acked == []
    assert result.replay_divergences == 0
    # Results durable at crash time are suppressed on replay, never
    # re-emitted — the visible exactly-once guarantee.  (>=: the worker
    # may land one more result between the count and the abandon.)
    assert result.duplicates_suppressed >= result.results_at_crash
    assert result.equivalent
    assert result.drained
    assert result.passed


def test_torn_traffic_bundle_still_recovers(tmp_path):
    result = run_serve_kill(
        _cell(storage_fault=StorageFault("torn-write", target="traffic")),
        tmp_path,
    )
    assert "traffic" in result.storage_fault_log
    # The store covers the hole the torn bundle left.
    assert result.lost_acked == []
    assert result.passed


def test_torn_store_wal_is_covered_by_the_bundle(tmp_path):
    result = run_serve_kill(
        _cell(storage_fault=StorageFault("torn-write", target="store-wal")),
        tmp_path,
    )
    assert "store-wal" in result.storage_fault_log
    assert result.lost_acked == []
    assert result.passed


def test_bit_flip_in_the_bundle_is_skipped_and_counted(tmp_path):
    result = run_serve_kill(
        _cell(storage_fault=StorageFault(
            "bit-flip", record=-1, target="traffic"
        )),
        tmp_path,
    )
    assert result.corrupt_traffic_lines >= 1
    assert result.passed


def test_config_guards_are_typed():
    with pytest.raises(UserInputError, match="unfinished"):
        ServeKillConfig(soak=SOAK, crash_after_results=SOAK.jobs)
    with pytest.raises(UserInputError, match=">= 0"):
        ServeKillConfig(soak=SOAK, crash_after_results=-1)
    with pytest.raises(UserInputError, match="target"):
        ServeKillConfig(
            soak=SOAK,
            crash_after_results=1,
            storage_fault=StorageFault("torn-write", target="journal"),
        )


def test_tear_wal_on_a_checkpointed_store_is_a_noop(tmp_path):
    assert "no-op" in tear_wal(tmp_path / "jobs.sqlite")
