"""Tests for intra-cluster scheduling (window-granular equal-time cuts)."""

import numpy as np
import pytest

from repro.sched.intra import (
    merge_sparse_groups,
    split_dense_for_little,
    split_groups_for_big,
)


class TestMergeSparseGroups:
    def test_group_sizes(self, rmat_partitions, config):
        sparse = rmat_partitions.nonempty()[2:]
        groups = merge_sparse_groups(sparse, config.n_gpe)
        for group in groups[:-1]:
            assert len(group) == config.n_gpe
        assert 1 <= len(groups[-1]) <= config.n_gpe

    def test_groups_ascending_bases(self, rmat_partitions, config):
        sparse = rmat_partitions.nonempty()[2:]
        for group in merge_sparse_groups(sparse, config.n_gpe):
            bases = [p.vertex_lo for p in group]
            assert bases == sorted(bases)

    def test_all_partitions_covered(self, rmat_partitions, config):
        sparse = rmat_partitions.nonempty()[2:]
        groups = merge_sparse_groups(sparse, config.n_gpe)
        assert sum(len(g) for g in groups) == len(sparse)

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            merge_sparse_groups([], 0)


class TestSplitDense:
    def test_edges_preserved(self, rmat_partitions, perf_model):
        dense = rmat_partitions.nonempty()[:2]
        tasks = split_dense_for_little(dense, 3, perf_model, 256)
        total = sum(t.num_edges for pipe in tasks for t in pipe)
        assert total == sum(p.num_edges for p in dense)

    def test_pipeline_count(self, rmat_partitions, perf_model):
        tasks = split_dense_for_little(
            rmat_partitions.nonempty()[:2], 5, perf_model, 256
        )
        assert len(tasks) == 5

    def test_balance(self, rmat_partitions, perf_model):
        dense = rmat_partitions.nonempty()[:2]
        tasks = split_dense_for_little(dense, 4, perf_model, 128)
        loads = [
            sum(t.estimated_cycles for t in pipe) for pipe in tasks
        ]
        loads = [l for l in loads if l > 0]
        assert max(loads) / min(loads) < 1.7

    def test_no_dense_partitions(self, perf_model):
        tasks = split_dense_for_little([], 3, perf_model)
        assert tasks == [[] for _ in range(3)]

    def test_zero_pipelines(self, rmat_partitions, perf_model):
        assert split_dense_for_little(
            rmat_partitions.nonempty()[:1], 0, perf_model
        ) == []

    def test_subpartitions_preserve_interval(self, rmat_partitions, perf_model):
        dense = rmat_partitions.nonempty()[:1]
        tasks = split_dense_for_little(dense, 3, perf_model, 128)
        for pipe in tasks:
            for task in pipe:
                assert task.partition.vertex_lo == dense[0].vertex_lo
                assert task.partition.vertex_hi == dense[0].vertex_hi


class TestSplitBig:
    def test_edges_preserved(self, rmat_partitions, perf_model, config):
        sparse = rmat_partitions.nonempty()[2:]
        groups = merge_sparse_groups(sparse, config.n_gpe)
        tasks = split_groups_for_big(groups, 3, perf_model, 256)
        total = sum(t.num_edges for pipe in tasks for t in pipe)
        assert total == sum(p.num_edges for p in sparse)

    def test_group_cap_respected(self, rmat_partitions, perf_model, config):
        sparse = rmat_partitions.nonempty()[2:]
        groups = merge_sparse_groups(sparse, config.n_gpe)
        tasks = split_groups_for_big(groups, 2, perf_model, 256)
        for pipe in tasks:
            for task in pipe:
                assert len(task.partitions) <= config.n_gpe

    def test_slices_ascending_sources(self, rmat_partitions, perf_model, config):
        sparse = rmat_partitions.nonempty()[2:]
        groups = merge_sparse_groups(sparse, config.n_gpe)
        tasks = split_groups_for_big(groups, 4, perf_model, 128)
        for pipe in tasks:
            for task in pipe:
                for p in task.partitions:
                    if p.num_edges > 1:
                        assert np.all(np.diff(p.src) >= 0)

    def test_no_groups(self, perf_model):
        tasks = split_groups_for_big([], 3, perf_model)
        assert tasks == [[] for _ in range(3)]

    def test_balance(self, rmat_partitions, perf_model, config):
        sparse = rmat_partitions.nonempty()[2:]
        groups = merge_sparse_groups(sparse, config.n_gpe)
        tasks = split_groups_for_big(groups, 3, perf_model, 128)
        loads = [sum(t.estimated_cycles for t in pipe) for pipe in tasks]
        loads = [l for l in loads if l > 0]
        if len(loads) > 1:
            assert max(loads) / min(loads) < 2.5
