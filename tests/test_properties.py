"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import PipelineConfig
from repro.arch.pingpong import PingPongBufferSim
from repro.arch.vertex_loader import VertexLoaderSim
from repro.graph.coo import Graph
from repro.graph.partition import partition_graph
from repro.graph.reorder import degree_based_grouping
from repro.hbm.channel import HbmChannelModel
from repro.utils.fixed_point import FixedPointFormat
from repro.utils.prefix import balanced_chunk_bounds, running_release_times

from tests.strategies import edge_lists

_CHANNEL = HbmChannelModel()
_CONFIG = PipelineConfig(gather_buffer_vertices=256)


class TestGraphProperties:
    @given(edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_graph_always_sorted(self, triple):
        n, src, dst = triple
        g = Graph(n, src, dst)
        assert np.all(np.diff(g.src) >= 0)

    @given(edge_lists())
    @settings(max_examples=50, deadline=None)
    def test_degrees_sum_to_edges(self, triple):
        n, src, dst = triple
        g = Graph(n, src, dst)
        assert g.in_degrees().sum() == g.num_edges
        assert g.out_degrees().sum() == g.num_edges

    @given(edge_lists(), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_partitioning_preserves_edges(self, triple, interval):
        n, src, dst = triple
        g = Graph(n, src, dst)
        pset = partition_graph(g, interval)
        assert pset.total_edges() == g.num_edges
        for p in pset.partitions:
            assert np.all(np.diff(p.src) >= 0)
            if p.num_edges:
                assert p.dst.min() >= p.vertex_lo
                assert p.dst.max() < p.vertex_hi

    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_dbg_is_bijective_relabelling(self, triple):
        n, src, dst = triple
        g = Graph(n, src, dst)
        res = degree_based_grouping(g)
        assert np.array_equal(np.sort(res.mapping), np.arange(n))
        assert res.graph.num_edges == g.num_edges
        # Edge multiset preserved under the inverse map.
        orig = sorted(zip(g.src.tolist(), g.dst.tolist()))
        back = sorted(
            zip(
                res.inverse[res.graph.src].tolist(),
                res.inverse[res.graph.dst].tolist(),
            )
        )
        assert orig == back


class TestFixedPointProperties:
    @given(
        st.lists(
            st.floats(-100, 100, allow_nan=False), min_size=1, max_size=50
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_within_resolution(self, values):
        fmt = FixedPointFormat()
        arr = np.array(values)
        out = fmt.to_float(fmt.from_float(arr))
        assert np.max(np.abs(out - arr)) <= fmt.resolution

    @given(
        st.floats(0.01, 2.5, allow_nan=False),
        st.floats(0.01, 2.5, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_multiply_close_to_real(self, a, b):
        # Q30 products overflow int64 once a*b reaches 8; PR values stay
        # well below 1, so the representable range here is [0, 2.5].
        fmt = FixedPointFormat()
        prod = fmt.to_float(fmt.multiply(fmt.from_float(a), fmt.from_float(b)))
        assert abs(prod - a * b) < 1e-6 * max(1.0, a * b) + 1e-6


class TestSchedulingMathProperties:
    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=0, max_size=200),
        st.integers(1, 10),
    )
    @settings(max_examples=100, deadline=None)
    def test_chunk_bounds_partition_the_sequence(self, weights, k):
        bounds = balanced_chunk_bounds(np.array(weights), k)
        assert bounds.size == k + 1
        assert bounds[0] == 0 and bounds[-1] == len(weights)
        assert np.all(np.diff(bounds) >= 0)

    @given(
        st.lists(
            st.tuples(
                st.floats(0, 1000, allow_nan=False),
                st.floats(0, 10, allow_nan=False),
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_release_times_match_loop(self, pairs):
        ready = np.array([p[0] for p in pairs])
        cost = np.array([p[1] for p in pairs])
        out = running_release_times(ready, cost)
        t = 0.0
        for i, (r, c) in enumerate(pairs):
            t = max(t + c, r)
            assert out[i] == np.float64(t) or abs(out[i] - t) < 1e-9


class TestPipelineTimingProperties:
    @given(
        st.lists(st.integers(0, 4000), min_size=1, max_size=300)
    )
    @settings(max_examples=30, deadline=None)
    def test_vertex_loader_ready_monotonic(self, vids):
        src = np.sort(np.array(vids, dtype=np.int64))
        loader = VertexLoaderSim(_CONFIG, _CHANNEL)
        ready, stats = loader.access_ready_times(src)
        assert np.all(np.diff(ready) >= -1e-9)
        assert stats.requests_issued >= 1
        assert stats.requests_issued + stats.requests_saved >= src.size

    @given(
        st.lists(st.integers(0, 100_000), min_size=1, max_size=300)
    )
    @settings(max_examples=30, deadline=None)
    def test_pingpong_never_fetches_more_than_span(self, vids):
        src = np.sort(np.array(vids, dtype=np.int64))
        sim = PingPongBufferSim(_CONFIG, _CHANNEL)
        ready, stats = sim.access_ready_times(src)
        assert stats.blocks_fetched <= stats.span_blocks
        assert stats.blocks_fetched + stats.blocks_skipped == stats.span_blocks
        assert np.all(np.diff(ready) >= -1e-9)

    @given(st.lists(st.integers(0, 100_000), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_jump_access_never_slower(self, vids):
        src = np.sort(np.array(vids, dtype=np.int64))
        with_jump = PingPongBufferSim(_CONFIG, _CHANNEL)
        r1, _ = with_jump.access_ready_times(src)
        cfg = PipelineConfig(gather_buffer_vertices=256, jump_access=False)
        without = PingPongBufferSim(cfg, _CHANNEL)
        r2, _ = without.access_ready_times(src)
        assert r1[-1] <= r2[-1] + 1e-9
