"""Tests for the full-system simulator."""

import numpy as np
import pytest

from repro.apps.bfs import BreadthFirstSearch
from repro.apps.pagerank import PageRank
from repro.apps.reference import bfs_reference, pagerank_reference
from repro.arch.platform import get_platform
from repro.core.system import SystemSimulator
from repro.sched.scheduler import build_schedule


@pytest.fixture()
def plan(rmat_partitions, perf_model):
    return build_schedule(rmat_partitions, perf_model, 6)


@pytest.fixture()
def simulator(plan):
    return SystemSimulator(plan, get_platform("U280"))


class TestFunctionalExecution:
    def test_pagerank_matches_reference(self, simulator, dbg_rmat, small_rmat):
        app = PageRank(dbg_rmat.graph)
        run = simulator.run(app, max_iterations=8)
        internal_ref = pagerank_reference(dbg_rmat.graph, iterations=run.iterations)
        assert np.max(np.abs(run.result - internal_ref)) < 1e-5

    def test_bfs_matches_reference(self, simulator, dbg_rmat):
        app = BreadthFirstSearch(dbg_rmat.graph, root=0)
        run = simulator.run(app)
        np.testing.assert_array_equal(
            run.props, bfs_reference(dbg_rmat.graph, 0)
        )

    def test_bfs_converges(self, simulator, dbg_rmat):
        run = simulator.run(BreadthFirstSearch(dbg_rmat.graph, root=0))
        assert run.converged

    def test_iteration_cap_respected(self, simulator, dbg_rmat):
        run = simulator.run(PageRank(dbg_rmat.graph), max_iterations=3)
        assert run.iterations <= 3


class TestTimingAccounting:
    def test_cycles_accumulate(self, simulator, dbg_rmat):
        run = simulator.run(PageRank(dbg_rmat.graph), max_iterations=4)
        per_iter = [r.total_cycles for r in run.iteration_reports]
        assert run.total_cycles == pytest.approx(sum(per_iter))

    def test_iteration_timing_cached(self, simulator, dbg_rmat):
        run = simulator.run(PageRank(dbg_rmat.graph), max_iterations=3)
        cycles = {r.total_cycles for r in run.iteration_reports}
        assert len(cycles) == 1  # same static plan every iteration

    def test_mteps_consistent(self, simulator, dbg_rmat):
        run = simulator.run(PageRank(dbg_rmat.graph), max_iterations=4)
        expected = run.processed_edges / run.total_seconds / 1e6
        assert run.mteps == pytest.approx(expected)

    def test_nonfunctional_mode_runs_exact_iterations(self, simulator, dbg_rmat):
        run = simulator.run(
            PageRank(dbg_rmat.graph), max_iterations=5, functional=False
        )
        assert run.iterations == 5
        assert run.props is None

    def test_frequency_from_resource_model(self, simulator):
        assert 210.0 < simulator.frequency_mhz <= 300.0

    def test_cluster_overlap_semantics(self, simulator, dbg_rmat):
        run = simulator.run(PageRank(dbg_rmat.graph), max_iterations=1)
        rep = run.iteration_reports[0]
        assert rep.total_cycles >= rep.cluster_cycles
        assert rep.total_cycles >= rep.apply_cycles


class TestHomogeneousPlans:
    @pytest.mark.parametrize("combo", [(6, 0), (0, 6)])
    def test_homogeneous_still_correct(
        self, rmat_partitions, perf_model, dbg_rmat, combo
    ):
        plan = build_schedule(
            rmat_partitions, perf_model, 6, forced_combo=combo
        )
        sim = SystemSimulator(plan, get_platform("U280"))
        run = sim.run(BreadthFirstSearch(dbg_rmat.graph, root=0))
        np.testing.assert_array_equal(
            run.props, bfs_reference(dbg_rmat.graph, 0)
        )
