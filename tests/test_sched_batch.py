"""Tests for the batch (multi-graph) scheduler."""

import pytest

from repro.sched.batch import (
    REPROGRAM_SECONDS,
    BatchItem,
    BatchSchedule,
    naive_batch,
    plan_batch,
)


def _item(name, label, seconds=1.0):
    return BatchItem(
        graph_name=name, combo_label=label, estimated_run_seconds=seconds
    )


class TestAccounting:
    def test_single_item_one_program(self):
        sched = BatchSchedule(items=[_item("a", "7L7B")])
        assert sched.num_reprograms == 1
        assert sched.total_seconds == 1.0 + REPROGRAM_SECONDS

    def test_alternating_labels_reprogram_each_time(self):
        sched = BatchSchedule(
            items=[_item("a", "X"), _item("b", "Y"), _item("c", "X")]
        )
        assert sched.num_reprograms == 3

    def test_grouped_labels_program_once_each(self):
        sched = BatchSchedule(
            items=[_item("a", "X"), _item("c", "X"), _item("b", "Y")]
        )
        assert sched.num_reprograms == 2

    def test_empty_batch(self):
        sched = BatchSchedule(items=[])
        assert sched.num_reprograms == 0
        assert sched.total_seconds == 0.0


class TestPlanning:
    class _FakePre:
        def __init__(self, label):
            class _Plan:
                pass

            class _Accel:
                pass

            self.plan = _Plan()
            self.plan.accelerator = _Accel()
            self.plan.accelerator.label = label

    def _preprocess_by_name(self, graph):
        # Deterministic fake: label derived from the graph's name suffix.
        return self._FakePre("AL" if graph.name.endswith("a") else "BL")

    def _graphs(self):
        from repro.graph.generators import erdos_renyi_graph

        return [
            erdos_renyi_graph(16, 32, seed=i, name=f"g{i}-{suffix}")
            for i, suffix in enumerate("abab")
        ]

    def test_grouped_never_slower_than_fifo(self):
        graphs = self._graphs()
        grouped = plan_batch(
            graphs, self._preprocess_by_name, lambda pre: 1.0
        )
        fifo = naive_batch(
            graphs, self._preprocess_by_name, lambda pre: 1.0
        )
        assert grouped.total_seconds <= fifo.total_seconds
        assert grouped.num_reprograms == 2
        assert fifo.num_reprograms == 4

    def test_run_time_preserved(self):
        graphs = self._graphs()
        grouped = plan_batch(
            graphs, self._preprocess_by_name, lambda pre: 2.5
        )
        assert sum(
            i.estimated_run_seconds for i in grouped.items
        ) == pytest.approx(10.0)

    def test_end_to_end_with_real_framework(self, small_rmat, small_powerlaw):
        from repro.arch.config import PipelineConfig
        from repro.core.framework import ReGraph

        fw = ReGraph(
            "U280",
            pipeline=PipelineConfig(gather_buffer_vertices=512),
            num_pipelines=4,
        )
        sched = plan_batch(
            [small_rmat, small_powerlaw],
            fw.preprocess,
            lambda pre: pre.plan.estimated_makespan / 270e6,
        )
        assert len(sched.items) == 2
        assert sched.total_seconds > 0
