"""Tests for the Table III dataset registry."""

import pytest

from repro.graph.datasets import DATASETS, load_dataset, table3_rows


class TestRegistry:
    def test_sixteen_datasets(self):
        assert len(DATASETS) == 16

    @pytest.mark.parametrize(
        "key", ["R19", "R21", "R24", "G23", "GG", "AM", "HD", "BB",
                "TC", "PK", "FU", "WP", "LJ", "HW", "DB", "OR"]
    )
    def test_paper_keys_present(self, key):
        assert key in DATASETS

    def test_rmat_specs_match_paper(self):
        spec = DATASETS["R21"]
        assert spec.num_vertices == 2**21
        assert spec.avg_degree == 32

    def test_published_signature_hd(self):
        spec = DATASETS["HD"]
        assert spec.num_vertices == 1_984_484
        assert spec.num_edges == 14_869_484
        assert spec.directed

    def test_undirected_datasets(self):
        for key in ("FU", "LJ", "HW", "OR"):
            assert not DATASETS[key].directed

    def test_table3_rows_complete(self):
        rows = table3_rows()
        assert len(rows) == 16
        assert rows[0][0] == "R19"


class TestInstantiation:
    def test_scaled_powerlaw_size(self):
        g = load_dataset("HD", scale=0.01, seed=0)
        spec = DATASETS["HD"]
        assert g.num_vertices == int(spec.num_vertices * 0.01)
        assert g.num_edges == int(spec.num_edges * 0.01)

    def test_scaled_preserves_avg_degree(self):
        g = load_dataset("PK", scale=0.02, seed=0)
        spec = DATASETS["PK"]
        assert g.average_degree == pytest.approx(
            spec.num_edges / spec.num_vertices, rel=0.05
        )

    def test_rmat_scaling_halves_levels(self):
        g = load_dataset("R19", scale=0.25, seed=0)
        assert g.num_vertices == 2 ** (19 - 2)

    def test_undirected_standin_mirrors(self):
        g = load_dataset("HW", scale=0.005, seed=0)
        pairs = set(zip(g.src.tolist(), g.dst.tolist()))
        mirrored = sum((d, s) in pairs for s, d in pairs)
        assert mirrored == len(pairs)

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            load_dataset("NOPE")

    def test_invalid_scale_raises(self):
        with pytest.raises(ValueError):
            load_dataset("HD", scale=0.0)

    def test_deterministic(self):
        a = load_dataset("GG", scale=0.01, seed=5)
        b = load_dataset("GG", scale=0.01, seed=5)
        assert a.num_edges == b.num_edges
        assert (a.src == b.src).all()
