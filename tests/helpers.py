"""Shared graph/device setup for the test and benchmark suites.

One home for the configuration both ``tests/conftest.py`` and
``benchmarks/conftest.py`` previously duplicated: buffer-size constants,
framework factories at test and benchmark scale, and the hand-built
Fig. 1 example graph.  Import from here rather than re-declaring — the
conformance subsystem assumes both suites exercise the same setups.
"""

from __future__ import annotations

from repro.arch.config import PipelineConfig
from repro.core.framework import ReGraph
from repro.graph.coo import Graph

#: Buffer size small enough that test graphs produce many partitions.
TEST_BUFFER_VERTICES = 512

#: Scale factor applied to every dataset stand-in in benchmarks.
BENCH_SCALE = 1.0 / 32.0

#: Gather buffer at benchmark scale (65,536 / 32 on U280, half on U50),
#: preserving the partition-count ratio (V / U) of the full-size runs.
BENCH_BUFFERS = {"U280": 2048, "U50": 1024}

#: Graphs used by the throughput sweeps (small enough to simulate).
SWEEP_GRAPHS = ("R21", "GG", "HD", "PK", "HW", "OR")


def make_pipeline_config(
    buffer_vertices: int = TEST_BUFFER_VERTICES, **overrides
) -> PipelineConfig:
    """A pipeline configuration with a test-sized gather buffer."""
    return PipelineConfig(
        gather_buffer_vertices=buffer_vertices, **overrides
    )


def make_framework(
    platform: str = "U280",
    buffer_vertices: int = TEST_BUFFER_VERTICES,
    num_pipelines=None,
    **config_overrides,
) -> ReGraph:
    """A ReGraph framework at test scale."""
    return ReGraph(
        platform,
        pipeline=make_pipeline_config(buffer_vertices, **config_overrides),
        num_pipelines=num_pipelines,
    )


def bench_pipeline_config(platform: str = "U280") -> PipelineConfig:
    """The Sec. VI-A pipeline config at benchmark scale."""
    return PipelineConfig(gather_buffer_vertices=BENCH_BUFFERS[platform])


def bench_framework(platform: str = "U280", num_pipelines=None) -> ReGraph:
    """A ReGraph instance at benchmark scale."""
    return ReGraph(
        platform,
        pipeline=bench_pipeline_config(platform),
        num_pipelines=num_pipelines,
    )


def fig1_graph() -> Graph:
    """The Fig. 1 example graph: 6 vertices, 8 edges, hand-built."""
    src = [0, 0, 1, 2, 3, 4, 4, 5]
    dst = [1, 3, 2, 0, 4, 2, 5, 0]
    return Graph(6, src, dst, name="fig1")
