"""Integration tests pinning the paper's qualitative claims.

Each test names the section/figure whose claim it checks.  These run on
scaled-down synthetic stand-ins, so they assert *shapes* (who wins, trend
directions, error bands), not absolute numbers.
"""

import numpy as np
import pytest

from repro.apps.pagerank import PageRank
from repro.arch.config import PipelineConfig
from repro.arch.platform import get_platform
from repro.core.framework import ReGraph
from repro.core.system import SystemSimulator
from repro.sched.scheduler import build_schedule


@pytest.fixture(scope="module")
def framework():
    return ReGraph(
        "U280",
        pipeline=PipelineConfig(gather_buffer_vertices=512),
        num_pipelines=8,
    )


def _pr_mteps(framework, plan, graph, iterations=5):
    sim = SystemSimulator(plan, framework.platform, framework.channel)
    run = sim.run(PageRank(graph), max_iterations=iterations, functional=False)
    return run.mteps


class TestFig10Heterogeneity:
    """Best performance always comes from mixed pipeline combinations."""

    def test_mixed_beats_homogeneous(self, framework, small_rmat):
        pre = framework.preprocess(small_rmat)
        graph = pre.graph
        mteps = {}
        for m in range(9):
            plan = build_schedule(
                pre.pset, framework.model, 8, forced_combo=(m, 8 - m)
            )
            mteps[m] = _pr_mteps(framework, plan, graph)
        best_m = max(mteps, key=mteps.get)
        assert 0 < best_m < 8, f"best combo {best_m}L{8-best_m}B is homogeneous"

    def test_selected_close_to_best(self, framework, small_rmat):
        """Sec. VI-C: the framework's choice reaches ~92% of the best."""
        pre = framework.preprocess(small_rmat)
        graph = pre.graph
        selected = _pr_mteps(framework, pre.plan, graph)
        best = max(
            _pr_mteps(
                framework,
                build_schedule(
                    pre.pset, framework.model, 8, forced_combo=(m, 8 - m)
                ),
                graph,
            )
            for m in range(9)
        )
        assert selected >= 0.75 * best


class TestFig12Scalability:
    """More pipelines -> more throughput on skewed graphs."""

    def test_throughput_scales_with_pipelines(self, small_rmat):
        mteps = []
        for n_pip in (2, 4, 8):
            fw = ReGraph(
                "U280",
                pipeline=PipelineConfig(gather_buffer_vertices=512),
                num_pipelines=n_pip,
            )
            pre = fw.preprocess(small_rmat)
            mteps.append(_pr_mteps(fw, pre.plan, pre.graph))
        assert mteps[0] < mteps[1] < mteps[2]

    def test_sublinear_on_super_sparse_graph(self):
        """Sec. VI-E: small irregular graphs do not scale linearly."""
        from repro.graph.generators import power_law_graph

        tiny_sparse = power_law_graph(4000, 10_000, exponent=1.2, seed=2)
        mteps = []
        for n_pip in (2, 8):
            fw = ReGraph(
                "U280",
                pipeline=PipelineConfig(gather_buffer_vertices=512),
                num_pipelines=n_pip,
            )
            pre = fw.preprocess(tiny_sparse)
            mteps.append(_pr_mteps(fw, pre.plan, pre.graph))
        speedup = mteps[1] / mteps[0]
        assert speedup < 4.0  # far below the 4x pipeline ratio


class TestTable4Preprocessing:
    """Preprocessing stays lightweight: O(V) DBG + O(E) partitioning."""

    def test_preprocessing_subsecond_on_test_graphs(self, framework, small_rmat):
        pre = framework.preprocess(small_rmat)
        assert pre.dbg_seconds < 2.0
        assert pre.schedule_seconds < 10.0

    def test_dbg_not_dominant(self, framework, small_rmat):
        # Table IV: vertex grouping is the cheaper phase.  Wall-clock
        # comparisons flake at millisecond scale, so only assert DBG does
        # not dominate the total preprocessing budget.
        pre = framework.preprocess(small_rmat)
        total = pre.dbg_seconds + pre.schedule_seconds
        assert pre.dbg_seconds < 0.9 * total + 1e-3


class TestSec6GResourceEfficiency:
    """ReGraph's throughput per LUT beats the monolithic baselines."""

    def test_regraph_beats_thundergp_like_simulated(self, framework, small_rmat):
        from repro.baselines.fpga import thundergp_like_plan

        pre = framework.preprocess(small_rmat)
        regraph_mteps = _pr_mteps(framework, pre.plan, pre.graph)

        mono = thundergp_like_plan(framework, small_rmat, num_pipelines=4)
        mono_fw = ReGraph(
            "U280", pipeline=framework.pipeline, num_pipelines=4
        )
        mono_mteps = _pr_mteps(mono_fw, mono.plan, mono.graph)
        assert regraph_mteps > mono_mteps

    def test_energy_efficiency_vs_cpu(self, framework, small_rmat):
        """Fig. 14: ReGraph is far more energy-efficient than Ligra."""
        from repro.baselines.energy import efficiency_ratio
        from repro.baselines.ligra import LigraModel

        pre = framework.preprocess(small_rmat)
        regraph_gteps = _pr_mteps(framework, pre.plan, pre.graph) / 1e3
        ligra_gteps = LigraModel().pagerank_mteps(small_rmat) / 1e3
        ratio = efficiency_ratio(regraph_gteps, 35.0, ligra_gteps, 208.0)
        assert ratio > 3.0


class TestIiSensitivity:
    """Eq. 3: a Gather PE with II = 2 halves the compute rate."""

    def test_proc_rate_halves(self):
        fast = PipelineConfig(n_spe=8, n_gpe=8, ii_gpe=1)
        slow = PipelineConfig(n_spe=8, n_gpe=8, ii_gpe=2)
        assert slow.proc_cycles_per_edge == 2 * fast.proc_cycles_per_edge

    def test_edge_bound_partition_slows_with_ii(self, rmat_partitions, channel):
        from repro.arch.little_pipeline import LittlePipelineSim

        dense = rmat_partitions.nonempty()[0]
        fast = LittlePipelineSim(
            PipelineConfig(gather_buffer_vertices=512, ii_gpe=1), channel
        )
        slow = LittlePipelineSim(
            PipelineConfig(gather_buffer_vertices=512, ii_gpe=2), channel
        )
        t_fast, _ = fast.execute(dense)
        t_slow, _ = slow.execute(dense)
        assert t_slow.compute_cycles > 1.5 * t_fast.compute_cycles

    def test_latency_bound_partition_insensitive_to_ii(
        self, rmat_partitions, channel
    ):
        from repro.arch.big_pipeline import BigPipelineSim

        sparse = rmat_partitions.nonempty()[-8:]
        fast = BigPipelineSim(
            PipelineConfig(gather_buffer_vertices=512, ii_gpe=1), channel
        )
        slow = BigPipelineSim(
            PipelineConfig(gather_buffer_vertices=512, ii_gpe=2), channel
        )
        t_fast, _ = fast.execute(sparse)
        t_slow, _ = slow.execute(sparse)
        # Sparse groups are memory bound; II barely matters.
        assert t_slow.total_cycles < 2.2 * t_fast.total_cycles


class TestAblations:
    """Design-choice ablations from DESIGN.md."""

    def test_data_routing_ablation(self, config, channel, rmat_partitions):
        """Disabling data routing forfeits switch-overhead amortisation."""
        from repro.arch.big_pipeline import BigPipelineSim

        sparse = rmat_partitions.nonempty()[-8:]
        routed = BigPipelineSim(config, channel)
        grouped, _ = routed.execute(sparse)
        unrouted_cfg = PipelineConfig(
            gather_buffer_vertices=config.gather_buffer_vertices,
            data_routing=False,
        )
        unrouted = BigPipelineSim(unrouted_cfg, channel)
        separate = sum(
            unrouted.execute([p])[0].total_cycles for p in sparse
        )
        assert grouped.total_cycles < separate

    def test_model_guided_cuts_beat_even_cuts(self, perf_model, config, channel):
        """Sec. IV-B: equal-time cuts balance better than equal-edge cuts
        when per-edge costs are irregular.

        Constructed workload: the first half of the edges re-read one hot
        source (cheap, edge-bound); the second half stride a block per
        edge (expensive, fill-bound).  An equal-edge cut puts all the
        expensive edges on one pipeline; the model-guided cut does not.
        """
        import numpy as np

        from repro.arch.little_pipeline import LittlePipelineSim
        from repro.graph.partition import Partition

        cheap = np.zeros(2048, dtype=np.int64)
        expensive = (np.arange(2048, dtype=np.int64) + 1) * 16
        src = np.concatenate([cheap, expensive])
        partition = Partition(
            index=0,
            vertex_lo=0,
            vertex_hi=config.partition_vertices,
            src=src,
            dst=np.zeros(src.size, dtype=np.int64),
        )
        sim = LittlePipelineSim(config, channel)

        def imbalance(cuts):
            loads = []
            for lo, hi in zip(cuts[:-1], cuts[1:]):
                if hi > lo:
                    timing, _ = sim.execute(partition.slice(int(lo), int(hi)))
                    loads.append(timing.compute_cycles)
            return max(loads) / max(min(loads), 1e-9)

        model_cuts = perf_model.cut_points(src, "little", 2, window_edges=64)
        even_cuts = np.array([0, src.size // 2, src.size])
        assert imbalance(model_cuts) < imbalance(even_cuts) / 2

    def test_dbg_ablation_speeds_up_powerlaw_graphs(self, framework):
        """DBG concentrates hot vertices so dense partitions become
        cleanly classifiable; on power-law graphs this translates into
        a solid end-to-end throughput gain."""
        from repro.graph.generators import power_law_graph

        graph = power_law_graph(20_000, 160_000, exponent=2.0, seed=4)
        with_dbg = framework.preprocess(graph, use_dbg=True)
        without = framework.preprocess(graph, use_dbg=False)
        assert len(with_dbg.plan.dense_indices) >= 1
        mteps_with = _pr_mteps(framework, with_dbg.plan, with_dbg.graph)
        mteps_without = _pr_mteps(framework, without.plan, without.graph)
        assert mteps_with > 1.2 * mteps_without
