"""Tests for the COO graph structure."""

import numpy as np
import pytest

from repro.graph.coo import EDGE_BYTES, VERTEX_WORD_BYTES, Graph


class TestConstruction:
    def test_basic_counts(self, tiny_graph):
        assert tiny_graph.num_vertices == 6
        assert tiny_graph.num_edges == 8

    def test_sorted_by_source(self, tiny_graph):
        assert np.all(np.diff(tiny_graph.src) >= 0)

    def test_sorted_by_dst_within_source(self):
        g = Graph(4, [1, 1, 1, 0], [3, 0, 2, 1])
        sel = g.src == 1
        assert np.all(np.diff(g.dst[sel]) >= 0)

    def test_assume_sorted_skips_sort(self):
        # Deliberately unsorted input survives with assume_sorted.
        g = Graph(4, [3, 0], [0, 1], assume_sorted=True)
        assert g.src[0] == 3

    def test_weights_follow_sort(self):
        g = Graph(3, [2, 0, 1], [0, 1, 2], weights=[20, 0, 10])
        np.testing.assert_array_equal(g.weights, [0, 10, 20])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            Graph(3, [0, 1], [1])

    def test_weight_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="per edge"):
            Graph(3, [0, 1], [1, 2], weights=[1])

    def test_src_out_of_range_raises(self):
        with pytest.raises(ValueError, match="src"):
            Graph(3, [0, 5], [1, 2])

    def test_dst_out_of_range_raises(self):
        with pytest.raises(ValueError, match="dst"):
            Graph(3, [0, 1], [1, -1])

    def test_zero_vertices_raises(self):
        with pytest.raises(ValueError):
            Graph(0, [], [])


class TestDegrees:
    def test_in_degrees(self, tiny_graph):
        # dst = 1,3,2,0,4,2,5,0 -> vertex 0 has in-degree 2, vertex 2 has 2
        deg = tiny_graph.in_degrees()
        assert deg[0] == 2
        assert deg[2] == 2
        assert deg.sum() == tiny_graph.num_edges

    def test_out_degrees(self, tiny_graph):
        deg = tiny_graph.out_degrees()
        assert deg[0] == 2
        assert deg[4] == 2
        assert deg.sum() == tiny_graph.num_edges

    def test_average_degree(self, tiny_graph):
        assert tiny_graph.average_degree == pytest.approx(8 / 6)

    def test_degrees_cached(self, tiny_graph):
        assert tiny_graph.in_degrees() is tiny_graph.in_degrees()


class TestFootprint:
    def test_edge_bytes_unweighted(self, tiny_graph):
        assert tiny_graph.edge_bytes == EDGE_BYTES

    def test_edge_bytes_weighted(self):
        g = Graph(2, [0], [1], weights=[5])
        assert g.edge_bytes == EDGE_BYTES + VERTEX_WORD_BYTES

    def test_footprint_accounts_properties(self, tiny_graph):
        expected = 8 * EDGE_BYTES + 2 * 6 * VERTEX_WORD_BYTES
        assert tiny_graph.footprint_bytes == expected


class TestTransformations:
    def test_relabel_identity(self, tiny_graph):
        ident = np.arange(6)
        g2 = tiny_graph.relabel(ident)
        np.testing.assert_array_equal(g2.src, tiny_graph.src)
        np.testing.assert_array_equal(g2.dst, tiny_graph.dst)

    def test_relabel_preserves_structure(self, tiny_graph):
        mapping = np.array([5, 4, 3, 2, 1, 0])
        g2 = tiny_graph.relabel(mapping)
        orig = set(zip(tiny_graph.src.tolist(), tiny_graph.dst.tolist()))
        back = set(
            (5 - s, 5 - d) for s, d in zip(g2.src.tolist(), g2.dst.tolist())
        )
        assert orig == back

    def test_relabel_wrong_size_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.relabel(np.arange(5))

    def test_reversed_swaps_degrees(self, tiny_graph):
        rev = tiny_graph.reversed()
        np.testing.assert_array_equal(
            rev.in_degrees(), tiny_graph.out_degrees()
        )

    def test_reversed_twice_same_edge_set(self, tiny_graph):
        twice = tiny_graph.reversed().reversed()
        orig = sorted(zip(tiny_graph.src.tolist(), tiny_graph.dst.tolist()))
        back = sorted(zip(twice.src.tolist(), twice.dst.tolist()))
        assert orig == back

    def test_with_weights(self, tiny_graph):
        w = np.arange(8)
        g2 = tiny_graph.with_weights(w)
        assert g2.weights is not None
        assert g2.num_edges == tiny_graph.num_edges
