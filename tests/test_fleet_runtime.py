"""Tests for the fleet serving runtime (admission, placement, failover,
lifecycle, hedging, reporting)."""

import pytest

from repro.chaos.spec import GraphSpec
from repro.errors import (
    AcceleratorDrainingError,
    FleetOverloadError,
    JobFailoverExhaustedError,
    NoServingReplicaError,
    ReplicaCrashError,
    UserInputError,
)
from repro.faults.plan import FaultPlan, PipelineStallFault
from repro.faults.resilience import ResiliencePolicy
from repro.fleet import (
    QUARANTINED,
    RETIRED,
    SERVING,
    AdmissionController,
    FleetPolicy,
    FleetReport,
    FleetRuntime,
    Job,
    JobResult,
    PlacementEngine,
    ReplicaKill,
    TokenBucket,
    make_replica,
)


def small_graph(seed=1, weighted=False):
    return GraphSpec(
        kind="uniform", vertices=128, edges=512, seed=seed, weighted=weighted
    )


def make_job(job_id="j0", app="pagerank", seed=1, **kwargs):
    # High enough for BFS/SSSP/closeness to converge — the conformance
    # oracles compare against fully-converged references.
    kwargs.setdefault("max_iterations", 30)
    return Job(
        job_id=job_id, app=app,
        graph=small_graph(seed, weighted=(app == "sssp")), **kwargs
    )


#: A fault plan the resilience layer cannot absorb: every task of every
#: pipeline stalls, so retries and degradation both run out.
UNSURVIVABLE = FaultPlan(stalls=(PipelineStallFault(probability=1.0),))

#: Policy used by the failure-path tests: fail fast, quarantine fast.
FAST_FAIL = dict(
    resilience=ResiliencePolicy(max_retries=0, breaker_threshold=3),
)


def pool3():
    return [
        make_replica("r0", "U280"),
        make_replica("r1", "U50"),
        make_replica("r2", "U280"),
    ]


# ----------------------------------------------------------------------
# Job / JobResult model
# ----------------------------------------------------------------------
class TestJobModel:
    def test_round_trip(self):
        job = make_job(priority=2, deadline_seconds=0.5, submit_time=1.0)
        assert Job.from_dict(job.to_dict()) == job

    def test_unknown_app_rejected(self):
        with pytest.raises(UserInputError, match="app"):
            make_job(app="mincut")

    def test_sssp_requires_weighted_graph(self):
        with pytest.raises(UserInputError, match="weighted"):
            Job(job_id="j", app="sssp", graph=small_graph(weighted=False))

    def test_bad_deadline_rejected(self):
        with pytest.raises(UserInputError, match="deadline"):
            make_job(deadline_seconds=0.0)

    def test_deadline_critical(self):
        assert make_job(deadline_seconds=1.0).deadline_critical
        assert not make_job().deadline_critical

    def test_result_latency_and_deadline(self):
        result = JobResult(
            job_id="j", status="completed", submit_time=1.0,
            finish_time=1.25, deadline_seconds=0.5,
        )
        assert result.latency_seconds == pytest.approx(0.25)
        assert result.deadline_met is True
        assert JobResult.from_dict(result.to_dict()) == result

    def test_best_effort_has_no_deadline_verdict(self):
        result = JobResult(job_id="j", status="completed")
        assert result.deadline_met is None


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_queue_depth_shed_is_typed(self):
        controller = AdmissionController(max_queue_depth=2)
        job = make_job()
        controller.admit(job, queue_depth=1, now=0.0)
        with pytest.raises(FleetOverloadError) as err:
            controller.admit(job, queue_depth=2, now=0.0)
        assert err.value.reason == "queue-depth"
        assert controller.stats.shed_queue_depth == 1

    def test_rate_limit_shed_and_refill(self):
        controller = AdmissionController(
            max_queue_depth=100,
            rate_limit_jobs_per_second=10.0,
            rate_limit_burst=1,
        )
        job = make_job()
        controller.admit(job, queue_depth=0, now=0.0)
        with pytest.raises(FleetOverloadError) as err:
            controller.admit(job, queue_depth=0, now=0.0)
        assert err.value.reason == "rate-limit"
        # A tenth of a virtual second refills exactly one token.
        controller.admit(job, queue_depth=0, now=0.1)
        assert controller.stats.admitted == 2

    def test_token_bucket_caps_at_burst(self):
        bucket = TokenBucket(rate_per_second=100.0, burst=3)
        assert bucket.tokens_at(1e9) == pytest.approx(3.0)

    def test_runtime_records_rejections(self):
        policy = FleetPolicy(max_queue_depth=1)
        jobs = [
            make_job(f"j{i}", seed=i + 1, submit_time=0.0) for i in range(5)
        ]
        report = FleetRuntime([make_replica("r0", "U280")], policy).run(jobs)
        assert report.rejected > 0
        assert report.lost == 0
        rejected = [j for j in report.jobs if j.status == "rejected"]
        assert all(
            j.error_type == "FleetOverloadError" and j.detail
            for j in rejected
        )


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
class TestPlacement:
    def test_choose_is_deterministic_and_skips_excluded(self):
        pool = pool3()
        engine = PlacementEngine()
        job = make_job()
        graph = job.graph.build()
        first = engine.choose(pool, job, graph, now=0.0)
        assert first is engine.choose(pool, job, graph, now=0.0)
        other = engine.choose(
            pool, job, graph, now=0.0, exclude=(first.replica_id,)
        )
        assert other is not None and other is not first

    def test_choose_skips_non_serving(self):
        pool = pool3()
        for replica in pool:
            replica.kill()
        engine = PlacementEngine()
        job = make_job()
        assert engine.choose(pool, job, job.graph.build(), 0.0) is None

    def test_oversized_graph_fits_nowhere(self):
        replica = make_replica("r0", "U280")
        assert PlacementEngine.fits(replica, small_graph().build())
        # A graph whose per-channel edge share exceeds HBM capacity.
        too_big = _FakeGraph(num_edges=2**33, num_vertices=2)
        assert not PlacementEngine.fits(replica, too_big)

    def test_predicted_seconds_positive_and_cached(self):
        engine = PlacementEngine()
        replica = make_replica("r0", "U280")
        job = make_job()
        graph = job.graph.build()
        assert engine.predicted_seconds(replica, job, graph) > 0
        assert len(engine._pre_cache) == 1
        engine.preprocess_for(replica, job, graph)
        assert len(engine._pre_cache) == 1


class _FakeGraph:
    edge_bytes = 8

    def __init__(self, num_edges, num_vertices):
        self.num_edges = num_edges
        self.num_vertices = num_vertices


# ----------------------------------------------------------------------
# The happy path and failover
# ----------------------------------------------------------------------
class TestServing:
    def test_all_jobs_complete_clean(self):
        jobs = [
            make_job(f"j{i}", app=app, seed=i + 1, submit_time=0.0001 * i)
            for i, app in enumerate(
                ["pagerank", "bfs", "wcc", "closeness", "sssp"]
            )
        ]
        report = FleetRuntime(pool3()).run(jobs)
        assert report.completed == len(jobs)
        assert report.lost == 0 and report.unclean == 0
        assert report.passed

    def test_kill_mid_flight_fails_over_to_survivor(self):
        job = make_job(
            "long", seed=3, max_iterations=20,
        )
        runtime = FleetRuntime(pool3())
        report = runtime.run(
            [job],
            kills=[ReplicaKill("r0", 1e-7), ReplicaKill("r1", 2e-7)],
        )
        result = report.jobs[0]
        assert result.status == "completed"
        assert result.replica_id == "r2"
        assert result.attempts >= 2
        assert report.counters["failovers"] >= 1
        kinds = [a.kind for a in report.assignments]
        assert "requeue" in kinds

    def test_pool_wipeout_yields_typed_error(self):
        runtime = FleetRuntime([make_replica("r0", "U280")])
        report = runtime.run(
            [make_job("j0")], kills=[ReplicaKill("r0", 1e-7)]
        )
        result = report.jobs[0]
        assert result.status == "failed"
        assert result.error_type == NoServingReplicaError.__name__
        assert ReplicaCrashError.__name__ in result.detail
        assert report.lost == 0

    def test_failover_exhaustion_is_typed(self):
        policy = FleetPolicy(max_attempts=2, **FAST_FAIL)
        runtime = FleetRuntime(pool3(), policy)
        report = runtime.run(
            [make_job("doomed", app="bfs", fault_plan=UNSURVIVABLE)]
        )
        result = report.jobs[0]
        assert result.status == "failed"
        assert result.error_type == JobFailoverExhaustedError.__name__
        assert result.attempts == 2
        # The re-attempt went to a different replica than the first.
        log = report.assignment_log()
        assert len(log) == 2 and log[0][1] != log[1][1]

    def test_priority_orders_dispatch(self):
        # The blocker occupies the only replica, so low and high are
        # both queued when it frees up — high must dispatch first even
        # though low was submitted before it.
        jobs = [
            make_job("blocker", seed=7, submit_time=0.0),
            make_job("low", seed=1, submit_time=0.0, priority=0),
            make_job("high", seed=2, submit_time=0.0, priority=5),
        ]
        report = FleetRuntime([make_replica("r0", "U280")]).run(jobs)
        log = report.assignment_log()
        assert [entry[0] for entry in log] == ["blocker", "high", "low"]

    def test_duplicate_job_ids_rejected(self):
        runtime = FleetRuntime(pool3())
        with pytest.raises(UserInputError, match="duplicate"):
            runtime.run([make_job("dup"), make_job("dup", seed=2)])

    def test_unknown_kill_target_rejected(self):
        runtime = FleetRuntime(pool3())
        with pytest.raises(UserInputError, match="unknown replica"):
            runtime.run([make_job()], kills=[ReplicaKill("r9", 0.0)])


# ----------------------------------------------------------------------
# Replica lifecycle
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_consecutive_failures_drain_then_canary_repairs(self):
        policy = FleetPolicy(
            failure_threshold=2, max_attempts=1,
            quarantine_cooldown_seconds=0.01, **FAST_FAIL,
        )
        jobs = [
            make_job(f"bad{i}", app="bfs", seed=i + 1,
                     fault_plan=UNSURVIVABLE, submit_time=0.0)
            for i in range(2)
        ] + [make_job("good", seed=9, submit_time=0.05)]
        report = FleetRuntime([make_replica("r0", "U280")], policy).run(jobs)
        statuses = {j.job_id: j.status for j in report.jobs}
        assert statuses["good"] == "completed"
        assert report.counters["canaries"] == 1
        assert report.counters["repairs"] == 1
        assert report.replicas[0]["state"] == SERVING
        assert any(a.kind == "canary" for a in report.assignments)

    def test_drained_handle_refuses_new_work(self):
        replica = make_replica("r0", "U280")
        graph = small_graph().build()
        replica.handle.load_graph(graph)
        replica.handle.drain()
        with pytest.raises(AcceleratorDrainingError):
            replica.handle.execute("pagerank", max_iterations=1)
        with pytest.raises(AcceleratorDrainingError):
            replica.handle.load_graph(graph)
        replica.handle.resume()
        assert replica.handle.execute(
            "pagerank", max_iterations=1
        ).iterations == 1

    def test_begin_drain_with_no_inflight_quarantines(self):
        replica = make_replica("r0", "U280")
        replica.begin_drain(now=1.0)
        assert replica.state == QUARANTINED
        assert replica.quarantined_at == 1.0

    def test_retired_replica_cannot_repair(self):
        replica = make_replica("r0", "U280")
        replica.retire("done")
        with pytest.raises(UserInputError, match="retired"):
            replica.repair()

    def test_success_resets_consecutive_failures(self):
        replica = make_replica("r0", "U280")
        assert not replica.record_failure(threshold=2)
        replica.record_success()
        assert not replica.record_failure(threshold=2)
        assert replica.record_failure(threshold=2)

    def test_kill_retires_and_releases(self):
        replica = make_replica("r0", "U280")
        replica.kill("chaos")
        assert replica.state == RETIRED
        assert replica.killed
        assert not replica.handle.programmed


# ----------------------------------------------------------------------
# Hedged execution
# ----------------------------------------------------------------------
class TestHedging:
    def test_deadline_straggler_is_hedged(self):
        job = make_job(
            "crit", seed=3, max_iterations=20, deadline_seconds=1e-9
        )
        report = FleetRuntime(pool3(), FleetPolicy(hedge_enabled=True)).run(
            [job]
        )
        assert report.counters["hedges"] == 1
        kinds = {a.kind for a in report.assignments}
        assert "hedge" in kinds
        result = report.jobs[0]
        assert result.status == "completed" and result.hedged
        # Both racers carried the same attempt number.
        numbers = {a.attempt for a in report.assignments}
        assert numbers == {1}

    def test_hedge_disabled_by_policy(self):
        job = make_job(
            "crit", seed=3, max_iterations=20, deadline_seconds=1e-9
        )
        report = FleetRuntime(pool3(), FleetPolicy(hedge_enabled=False)).run(
            [job]
        )
        assert report.counters["hedges"] == 0

    def test_no_hedge_for_best_effort_jobs(self):
        report = FleetRuntime(pool3()).run([make_job("plain", seed=4)])
        assert report.counters["hedges"] == 0

    def test_hedge_survives_primary_crash(self):
        # Kill the primary's replica while the duplicate is racing: the
        # job must still complete via the hedge, not fail over again.
        job = make_job(
            "crit", seed=3, max_iterations=20, deadline_seconds=1e-9
        )
        runtime = FleetRuntime(pool3(), FleetPolicy(hedge_enabled=True))
        probe = FleetRuntime(pool3(), FleetPolicy(hedge_enabled=True))
        primary = probe.run([job]).assignments[0].replica_id
        report = runtime.run([job], kills=[ReplicaKill(primary, 1e-7)])
        result = report.jobs[0]
        assert result.status == "completed"
        assert result.replica_id != primary
        assert report.lost == 0


# ----------------------------------------------------------------------
# Reporting and determinism
# ----------------------------------------------------------------------
class TestReporting:
    def _run(self):
        jobs = [
            make_job(f"j{i}", app=app, seed=i + 1, submit_time=0.0002 * i,
                     priority=i % 2)
            for i, app in enumerate(["pagerank", "bfs", "wcc", "closeness"])
        ]
        return FleetRuntime(pool3()).run(
            jobs, kills=[ReplicaKill("r1", 0.0003)]
        )

    def test_report_round_trip_preserves_digest(self):
        report = self._run()
        clone = FleetReport.from_dict(report.to_dict())
        assert clone.digest() == report.digest()
        assert clone.assignment_log() == report.assignment_log()

    def test_identical_runs_are_bit_identical(self):
        first, second = self._run(), self._run()
        assert first.digest() == second.digest()
        assert first.assignment_log() == second.assignment_log()

    def test_summary_counts_are_consistent(self):
        report = self._run()
        summary = report.to_dict()["summary"]
        assert summary["completed"] == report.completed
        assert summary["lost"] == 0
        assert report.admitted == report.completed + report.failed
        assert report.makespan_seconds > 0
        assert report.jobs_per_second > 0

    def test_policy_round_trip(self):
        policy = FleetPolicy(
            max_queue_depth=5, rate_limit_jobs_per_second=7.0,
            watchdog_factor=16.0,
        )
        assert FleetPolicy.from_dict(policy.to_dict()) == policy

    def test_policy_validation(self):
        with pytest.raises(UserInputError):
            FleetPolicy(max_queue_depth=0)
        with pytest.raises(UserInputError):
            FleetPolicy(max_attempts=0)
        with pytest.raises(UserInputError):
            FleetPolicy(watchdog_factor=0.0)

    def test_empty_pool_rejected(self):
        with pytest.raises(UserInputError, match="at least one replica"):
            FleetRuntime([])

    def test_duplicate_replica_ids_rejected(self):
        with pytest.raises(UserInputError, match="duplicate"):
            FleetRuntime(
                [make_replica("r0", "U280"), make_replica("r0", "U50")]
            )
