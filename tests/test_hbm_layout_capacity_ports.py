"""Tests for channel layout, capacity accounting and port management."""

import pytest

from repro.graph.generators import erdos_renyi_graph
from repro.hbm.capacity import (
    CHANNEL_CAPACITY_BYTES,
    channel_capacity_bytes,
    fits_in_channels,
)
from repro.hbm.channel import BLOCK_BYTES
from repro.hbm.layout import build_channel_layout
from repro.hbm.ports import (
    PORTS_PER_PIPELINE_UNWRAPPED,
    PORTS_PER_PIPELINE_WRAPPED,
    bind_ports,
    max_pipelines,
)


class TestLayout:
    def test_regions_block_aligned(self):
        layout = build_channel_layout(1001, 7777)
        assert layout.src_prop_offset % BLOCK_BYTES == 0
        assert layout.dst_prop_offset % BLOCK_BYTES == 0

    def test_regions_do_not_overlap(self):
        layout = build_channel_layout(1000, 5000)
        assert layout.src_prop_offset >= layout.edges_bytes
        assert (
            layout.dst_prop_offset
            >= layout.src_prop_offset + layout.src_prop_bytes
        )

    def test_fits(self):
        layout = build_channel_layout(100, 100)
        assert layout.fits(CHANNEL_CAPACITY_BYTES)
        assert not layout.fits(64)

    def test_vertex_block_math_matches_paper(self):
        # Sec. III-B: index = floor(src*32/512), offset = src*32 mod 512
        # (bits); our byte-level equivalents at a zero region base.
        layout = build_channel_layout(0, 1024)
        assert layout.vertex_block_offset(16) == 0
        assert layout.vertex_block_offset(17) == 4
        base = layout.src_prop_offset // BLOCK_BYTES
        assert layout.vertex_block_index(16) == base + 1

    def test_total_bytes(self):
        layout = build_channel_layout(10, 10)
        assert layout.total_bytes == (
            layout.dst_prop_offset + layout.dst_prop_bytes
        )


class TestCapacity:
    def test_capacity_scales_linearly(self):
        assert channel_capacity_bytes(4) == 4 * CHANNEL_CAPACITY_BYTES

    def test_negative_channels_raise(self):
        with pytest.raises(ValueError):
            channel_capacity_bytes(-1)

    def test_small_graph_fits_one_channel(self):
        g = erdos_renyi_graph(1000, 10_000, seed=0)
        assert fits_in_channels(g, 1)

    def test_fig12_oom_semantics(self):
        # A graph whose replicated property arrays exceed one channel
        # is OoM at low channel counts regardless of striped edges.
        g = erdos_renyi_graph(40_000_000, 10, seed=0)
        assert not fits_in_channels(g, 2)


class TestPorts:
    def test_u280_pipeline_count(self):
        # 32 ports, 4 reserved, 2 per pipeline -> 14 (Sec. VI-A).
        assert max_pipelines(32, 32) == 14

    def test_u50_pipeline_count(self):
        # 28 ports -> 12 pipelines (Sec. VI-A).
        assert max_pipelines(32, 28) == 12

    def test_wrapper_saves_a_port_per_pipeline(self):
        with_wrapper = max_pipelines(32, 32, use_port_wrapper=True)
        without = max_pipelines(32, 32, use_port_wrapper=False)
        assert with_wrapper > without
        assert PORTS_PER_PIPELINE_WRAPPED < PORTS_PER_PIPELINE_UNWRAPPED

    def test_channel_bound(self):
        assert max_pipelines(4, 100) == 4

    def test_binding_disjoint_ports(self):
        binding = bind_ports(5, 32)
        seen = set()
        for ports in binding.pipeline_ports.values():
            for p in ports:
                assert p not in seen
                seen.add(p)
        for p in binding.apply_ports:
            assert p not in seen

    def test_binding_total(self):
        binding = bind_ports(14, 32)
        assert binding.total_ports_used == 32

    def test_binding_overflow_raises(self):
        with pytest.raises(ValueError):
            bind_ports(15, 32)
