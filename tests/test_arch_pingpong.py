"""Tests for the Little pipeline's Ping-Pong Buffer simulator."""

import numpy as np
import pytest

from repro.arch.config import PipelineConfig
from repro.arch.pingpong import PingPongBufferSim


@pytest.fixture()
def pingpong(config, channel):
    return PingPongBufferSim(config, channel)


class TestFillModel:
    def test_fetches_span_when_all_needed(self, pingpong, config):
        # Touch every vertex: the whole span streams in.
        src = np.arange(4096, dtype=np.int64)
        _, stats = pingpong.access_ready_times(src)
        assert stats.blocks_fetched == stats.span_blocks
        assert stats.blocks_skipped == 0

    def test_jump_access_skips_unneeded_segments(self, config, channel):
        seg_vertices = config.pingpong_blocks_per_side * config.vertices_per_block
        # Two hot regions far apart: jump access skips the gap.
        src = np.concatenate(
            [
                np.arange(64, dtype=np.int64),
                np.arange(64, dtype=np.int64) + 20 * seg_vertices,
            ]
        )
        sim = PingPongBufferSim(config, channel)
        _, stats = sim.access_ready_times(src)
        assert stats.blocks_skipped > 0
        assert stats.span_fraction_fetched < 1.0

    def test_no_jump_access_streams_everything(self, config, channel):
        seg_vertices = config.pingpong_blocks_per_side * config.vertices_per_block
        src = np.concatenate(
            [
                np.arange(64, dtype=np.int64),
                np.arange(64, dtype=np.int64) + 20 * seg_vertices,
            ]
        )
        cfg = PipelineConfig(
            gather_buffer_vertices=config.gather_buffer_vertices,
            jump_access=False,
        )
        sim = PingPongBufferSim(cfg, channel)
        _, stats = sim.access_ready_times(src)
        sim_jump = PingPongBufferSim(config, channel)
        _, stats_jump = sim_jump.access_ready_times(src)
        assert stats.blocks_fetched > stats_jump.blocks_fetched

    def test_jump_access_faster_on_gappy_partitions(self, config, channel):
        seg_vertices = config.pingpong_blocks_per_side * config.vertices_per_block
        src = np.concatenate(
            [
                np.arange(8, dtype=np.int64),
                np.arange(8, dtype=np.int64) + 50 * seg_vertices,
            ]
        )
        with_jump = PingPongBufferSim(config, channel)
        r1, _ = with_jump.access_ready_times(src)
        cfg = PipelineConfig(
            gather_buffer_vertices=config.gather_buffer_vertices,
            jump_access=False,
        )
        without = PingPongBufferSim(cfg, channel)
        r2, _ = without.access_ready_times(src)
        assert r1[-1] < r2[-1]


class TestReadyTimes:
    def test_monotonic(self, pingpong, rng):
        src = np.sort(rng.integers(0, 50_000, 1000))
        ready, _ = pingpong.access_ready_times(src)
        assert np.all(np.diff(ready) >= 0)

    def test_burst_rate_one_block_per_cycle(self, pingpong, config, channel):
        # Fill-bound workload: one edge per block.
        n = 2048
        src = np.arange(n, dtype=np.int64) * config.vertices_per_block
        ready, stats = pingpong.access_ready_times(src)
        assert ready[-1] == pytest.approx(
            stats.span_blocks + channel.params.min_latency, rel=0.05
        )

    def test_empty(self, pingpong):
        ready, stats = pingpong.access_ready_times(np.zeros(0, dtype=np.int64))
        assert ready.size == 0 and stats.span_blocks == 0

    def test_single_edge(self, pingpong):
        ready, stats = pingpong.access_ready_times(np.array([42]))
        assert ready.size == 1
        assert stats.blocks_fetched == 1

    def test_offset_base_block(self, pingpong):
        # Sources far from zero: only the local span matters.
        src = np.arange(100, dtype=np.int64) + 1_000_000
        _, stats = pingpong.access_ready_times(src)
        assert stats.span_blocks <= 8
