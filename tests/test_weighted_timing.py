"""Tests for weighted-edge stream timing (S_e = 12 B)."""

import numpy as np
import pytest

from repro.arch.big_pipeline import BigPipelineSim
from repro.arch.little_pipeline import LittlePipelineSim
from repro.graph.coo import EDGE_BYTES


def _with_weights(partition, rng):
    from repro.graph.partition import Partition

    return Partition(
        index=partition.index,
        vertex_lo=partition.vertex_lo,
        vertex_hi=partition.vertex_hi,
        src=partition.src,
        dst=partition.dst,
        weights=rng.integers(1, 100, partition.num_edges),
    )


class TestWeightedStreams:
    def test_weighted_little_slower_when_edge_bound(
        self, rmat_partitions, config, channel, rng
    ):
        # The dense head is edge-stream bound, so the 12 B record rate
        # (2/3 of the 8 B rate) shows directly.
        sim = LittlePipelineSim(config, channel)
        dense = rmat_partitions.nonempty()[0]
        plain, _ = sim.execute(dense)
        weighted, _ = sim.execute(_with_weights(dense, rng))
        assert weighted.compute_cycles > 1.2 * plain.compute_cycles

    def test_weighted_big_no_faster(self, rmat_partitions, config, channel, rng):
        sim = BigPipelineSim(config, channel)
        dense = rmat_partitions.nonempty()[0]
        plain, _ = sim.execute([dense])
        weighted, _ = sim.execute([_with_weights(dense, rng)])
        assert weighted.compute_cycles >= plain.compute_cycles

    def test_model_floor_tracks_edge_bytes(self, perf_model):
        src = np.zeros(64, dtype=np.int64)
        plain = perf_model.edge_costs_little(src, edge_bytes=EDGE_BYTES)
        weighted = perf_model.edge_costs_little(src, edge_bytes=12)
        assert weighted[0] == pytest.approx(12 / 64)
        assert plain[0] == pytest.approx(8 / 64)

    def test_fixed_overheads_unchanged(self, rmat_partitions, config, channel, rng):
        sim = LittlePipelineSim(config, channel)
        sparse = rmat_partitions.nonempty()[-1]
        plain, _ = sim.execute(sparse)
        weighted, _ = sim.execute(_with_weights(sparse, rng))
        assert weighted.store_cycles == plain.store_cycles
        assert weighted.switch_cycles == plain.switch_cycles
