"""Tests for the OpenCL-style host runtime emulation."""

import numpy as np
import pytest

from repro.apps.reference import bfs_reference
from repro.arch.config import PipelineConfig
from repro.hbm.capacity import CHANNEL_CAPACITY_BYTES
from repro.runtime.host import (
    PROGRAMMING_SECONDS,
    AcceleratorHandle,
    init_accelerator,
    list_devices,
)


@pytest.fixture()
def handle():
    return init_accelerator(
        "U280",
        pipeline=PipelineConfig(gather_buffer_vertices=512),
        num_pipelines=4,
    )


class TestDiscovery:
    def test_lists_both_cards(self):
        assert list_devices() == ["U280", "U50"]

    def test_init_returns_programmed_handle(self, handle):
        assert isinstance(handle, AcceleratorHandle)
        assert handle.programmed
        assert handle.platform.name == "Alveo U280"


class TestBuffers:
    def test_allocate_within_capacity(self, handle):
        buffer = handle.allocate("x", 1024, channels=[0, 1])
        assert buffer.per_channel_bytes == 512
        assert "x" in handle.buffers

    def test_allocate_over_capacity_raises(self, handle):
        with pytest.raises(MemoryError):
            handle.allocate("big", 2 * CHANNEL_CAPACITY_BYTES, channels=[0])

    def test_allocate_after_release_raises(self, handle):
        handle.release()
        with pytest.raises(RuntimeError):
            handle.allocate("x", 64, channels=[0])


class TestExecution:
    def test_load_then_run_bfs(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        run = handle.execute("bfs", root=0)
        np.testing.assert_array_equal(
            run.props, bfs_reference(small_rmat, 0)
        )

    def test_pagerank_runs(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        run = handle.execute("pagerank", max_iterations=3)
        assert run.iterations <= 3
        assert run.mteps > 0

    def test_execute_without_graph_raises(self, handle):
        with pytest.raises(RuntimeError, match="load_graph"):
            handle.execute("bfs")

    def test_unknown_app_raises(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        with pytest.raises(ValueError, match="unknown app"):
            handle.execute("quantum")

    def test_migration_time_charged(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        assert handle.migration_seconds > 0

    def test_offload_accounting(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        run = handle.execute("bfs")
        total = handle.total_offload_seconds(run)
        assert total >= PROGRAMMING_SECONDS + run.total_seconds

    def test_release_clears_state(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        handle.release()
        with pytest.raises(RuntimeError):
            handle.load_graph(small_rmat)


class TestPersistentBreakers:
    """The handle's circuit-breaker bank outlives individual executes:
    a channel blacklisted in one run stays blacklisted in the next."""

    def test_plain_execute_creates_no_bank(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        handle.execute("pagerank", max_iterations=2)
        assert handle.breakers is None

    def test_bank_persists_across_executes(self, handle, small_rmat):
        from repro.faults import DeadChannelFault, FaultPlan

        handle.load_graph(small_rmat)
        plan = FaultPlan(dead_channels=(
            DeadChannelFault(channel=0, onset_cycle=2000.0),
        ))
        first = handle.execute("pagerank", max_iterations=10,
                               fault_plan=plan)
        bank = handle.breakers
        assert bank is not None
        assert first.health.breaker_trips == 1
        assert first.health.channel_breakers["0"]["state"] == "open"

        # Same handle, fresh run, *empty* fault plan: the open breaker
        # degrades channel 0's pipeline at run start, before any fault.
        second = handle.execute("pagerank", max_iterations=10,
                                fault_plan=FaultPlan())
        assert handle.breakers is bank
        assert second.health.replans >= 1
        assert any(
            f.category == "breaker-open" for f in second.health.faults
        )
        assert second.health.channel_breakers["0"]["state"] == "open"

    def test_release_drops_the_bank(self, handle, small_rmat):
        from repro.faults import DeadChannelFault, FaultPlan

        handle.load_graph(small_rmat)
        handle.execute("pagerank", max_iterations=5, fault_plan=FaultPlan(
            dead_channels=(DeadChannelFault(channel=0),)
        ))
        assert handle.breakers is not None
        handle.release()
        assert handle.breakers is None


class TestHostTimingConfig:
    def test_defaults_match_module_constants(self):
        from repro.runtime.host import (
            PCIE_BYTES_PER_SECOND,
            HostTimingConfig,
        )

        timing = HostTimingConfig()
        assert timing.programming_seconds == PROGRAMMING_SECONDS
        assert timing.pcie_bytes_per_second == PCIE_BYTES_PER_SECOND

    def test_instant_profile(self):
        from repro.runtime.host import HostTimingConfig

        timing = HostTimingConfig.instant()
        assert timing.programming_seconds == 0.0
        assert timing.pcie_bytes_per_second == float("inf")

    def test_round_trip(self):
        from repro.runtime.host import HostTimingConfig

        timing = HostTimingConfig(
            programming_seconds=1.0, pcie_bytes_per_second=1e9
        )
        assert HostTimingConfig.from_dict(timing.to_dict()) == timing

    def test_validation(self):
        from repro.errors import UserInputError
        from repro.runtime.host import HostTimingConfig

        with pytest.raises(UserInputError):
            HostTimingConfig(programming_seconds=-1.0)
        with pytest.raises(UserInputError):
            HostTimingConfig(pcie_bytes_per_second=0.0)

    def test_instance_knobs_drive_migration(self, small_rmat):
        """Per-handle timing replaces the old module-constant lookup:
        two handles with different PCIe rates charge different times."""
        from repro.runtime.host import HostTimingConfig

        slow = init_accelerator(
            "U280", timing=HostTimingConfig(pcie_bytes_per_second=1e9)
        )
        fast = init_accelerator(
            "U280", timing=HostTimingConfig(pcie_bytes_per_second=4e9)
        )
        slow.load_graph(small_rmat)
        fast.load_graph(small_rmat)
        assert slow.migration_seconds == pytest.approx(
            4 * fast.migration_seconds
        )

    def test_instance_knobs_drive_offload(self, small_rmat):
        from repro.runtime.host import HostTimingConfig

        handle = init_accelerator(
            "U280", timing=HostTimingConfig(programming_seconds=10.0)
        )
        handle.load_graph(small_rmat)
        run = handle.execute("pagerank", max_iterations=1)
        assert handle.total_offload_seconds(run) >= 10.0

    def test_instant_timing_charges_nothing(self, small_rmat):
        from repro.runtime.host import HostTimingConfig

        handle = init_accelerator(
            "U280", timing=HostTimingConfig.instant()
        )
        handle.load_graph(small_rmat)
        assert handle.migration_seconds == 0.0


class TestVirtualClock:
    def test_starts_at_zero_and_advances(self):
        from repro.runtime.host import VirtualClock

        clock = VirtualClock()
        assert clock.now == 0.0
        clock.advance(1.5)
        assert clock.now == 1.5
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_never_goes_backwards(self):
        from repro.runtime.host import VirtualClock

        clock = VirtualClock()
        clock.advance_to(2.0)
        clock.advance_to(1.0)  # ignored, monotone
        assert clock.now == 2.0

    def test_rejects_bad_inputs(self):
        from repro.errors import UserInputError
        from repro.runtime.host import VirtualClock

        with pytest.raises(UserInputError):
            VirtualClock().advance(-1.0)
        with pytest.raises(UserInputError):
            VirtualClock().advance_to(float("nan"))


class TestDeviceValidation:
    def test_unknown_device_is_typed_and_lists_names(self):
        from repro.errors import UserInputError

        with pytest.raises(UserInputError) as err:
            init_accelerator("U9000")
        message = str(err.value)
        assert "U9000" in message
        for name in list_devices():
            assert name in message


class TestFleetHooks:
    def test_drain_blocks_and_resume_unblocks(self, handle, small_rmat):
        from repro.errors import AcceleratorDrainingError

        handle.load_graph(small_rmat)
        handle.drain()
        assert handle.draining
        with pytest.raises(AcceleratorDrainingError):
            handle.execute("pagerank", max_iterations=1)
        with pytest.raises(AcceleratorDrainingError):
            handle.load_graph(small_rmat)
        handle.resume()
        assert handle.execute("pagerank", max_iterations=1).iterations == 1

    def test_release_clears_drain_and_health(self, handle, small_rmat):
        from repro.faults import FaultPlan

        handle.load_graph(small_rmat)
        handle.execute("pagerank", max_iterations=2,
                       fault_plan=FaultPlan())
        handle.drain()
        handle.release()
        assert not handle.draining
        assert handle.last_health is None

    def test_health_snapshot_recorded(self, handle, small_rmat):
        from repro.faults import FaultPlan

        handle.load_graph(small_rmat)
        assert handle.last_health is None
        handle.execute("pagerank", max_iterations=2, fault_plan=FaultPlan())
        assert handle.last_health is not None
        assert handle.open_breaker_count() == 0

    def test_breaker_count_reflects_open_channels(self, handle, small_rmat):
        from repro.faults import DeadChannelFault, FaultPlan

        handle.load_graph(small_rmat)
        handle.execute("pagerank", max_iterations=5, fault_plan=FaultPlan(
            dead_channels=(DeadChannelFault(channel=0),)
        ))
        assert handle.open_breaker_count() == 1
        assert handle.breaker_snapshot()["0"]["state"] == "open"

    def test_hbm_accounting(self, handle, small_rmat):
        assert handle.hbm_bytes_used() == 0
        total = handle.hbm_bytes_total()
        assert total == 32 * CHANNEL_CAPACITY_BYTES
        handle.load_graph(small_rmat)
        used = handle.hbm_bytes_used()
        assert 0 < used < total
        assert handle.hbm_bytes_free() == total - used
