"""Tests for the OpenCL-style host runtime emulation."""

import numpy as np
import pytest

from repro.apps.reference import bfs_reference
from repro.arch.config import PipelineConfig
from repro.hbm.capacity import CHANNEL_CAPACITY_BYTES
from repro.runtime.host import (
    PROGRAMMING_SECONDS,
    AcceleratorHandle,
    init_accelerator,
    list_devices,
)


@pytest.fixture()
def handle():
    return init_accelerator(
        "U280",
        pipeline=PipelineConfig(gather_buffer_vertices=512),
        num_pipelines=4,
    )


class TestDiscovery:
    def test_lists_both_cards(self):
        assert list_devices() == ["U280", "U50"]

    def test_init_returns_programmed_handle(self, handle):
        assert isinstance(handle, AcceleratorHandle)
        assert handle.programmed
        assert handle.platform.name == "Alveo U280"


class TestBuffers:
    def test_allocate_within_capacity(self, handle):
        buffer = handle.allocate("x", 1024, channels=[0, 1])
        assert buffer.per_channel_bytes == 512
        assert "x" in handle.buffers

    def test_allocate_over_capacity_raises(self, handle):
        with pytest.raises(MemoryError):
            handle.allocate("big", 2 * CHANNEL_CAPACITY_BYTES, channels=[0])

    def test_allocate_after_release_raises(self, handle):
        handle.release()
        with pytest.raises(RuntimeError):
            handle.allocate("x", 64, channels=[0])


class TestExecution:
    def test_load_then_run_bfs(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        run = handle.execute("bfs", root=0)
        np.testing.assert_array_equal(
            run.props, bfs_reference(small_rmat, 0)
        )

    def test_pagerank_runs(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        run = handle.execute("pagerank", max_iterations=3)
        assert run.iterations <= 3
        assert run.mteps > 0

    def test_execute_without_graph_raises(self, handle):
        with pytest.raises(RuntimeError, match="load_graph"):
            handle.execute("bfs")

    def test_unknown_app_raises(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        with pytest.raises(ValueError, match="unknown app"):
            handle.execute("quantum")

    def test_migration_time_charged(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        assert handle.migration_seconds > 0

    def test_offload_accounting(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        run = handle.execute("bfs")
        total = handle.total_offload_seconds(run)
        assert total >= PROGRAMMING_SECONDS + run.total_seconds

    def test_release_clears_state(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        handle.release()
        with pytest.raises(RuntimeError):
            handle.load_graph(small_rmat)


class TestPersistentBreakers:
    """The handle's circuit-breaker bank outlives individual executes:
    a channel blacklisted in one run stays blacklisted in the next."""

    def test_plain_execute_creates_no_bank(self, handle, small_rmat):
        handle.load_graph(small_rmat)
        handle.execute("pagerank", max_iterations=2)
        assert handle.breakers is None

    def test_bank_persists_across_executes(self, handle, small_rmat):
        from repro.faults import DeadChannelFault, FaultPlan

        handle.load_graph(small_rmat)
        plan = FaultPlan(dead_channels=(
            DeadChannelFault(channel=0, onset_cycle=2000.0),
        ))
        first = handle.execute("pagerank", max_iterations=10,
                               fault_plan=plan)
        bank = handle.breakers
        assert bank is not None
        assert first.health.breaker_trips == 1
        assert first.health.channel_breakers["0"]["state"] == "open"

        # Same handle, fresh run, *empty* fault plan: the open breaker
        # degrades channel 0's pipeline at run start, before any fault.
        second = handle.execute("pagerank", max_iterations=10,
                                fault_plan=FaultPlan())
        assert handle.breakers is bank
        assert second.health.replans >= 1
        assert any(
            f.category == "breaker-open" for f in second.health.faults
        )
        assert second.health.channel_breakers["0"]["state"] == "open"

    def test_release_drops_the_bank(self, handle, small_rmat):
        from repro.faults import DeadChannelFault, FaultPlan

        handle.load_graph(small_rmat)
        handle.execute("pagerank", max_iterations=5, fault_plan=FaultPlan(
            dead_channels=(DeadChannelFault(channel=0),)
        ))
        assert handle.breakers is not None
        handle.release()
        assert handle.breakers is None
