"""Kill-restart chaos cells: the durability loop closed end to end.

One cell = reference run, journaled run hard-killed at seeded crash
points, optional storage corruption between death and rebirth, recovery
by replay, and the oracles: zero lost jobs, exactly-once results, zero
replay divergences, recovery equivalence (docs/DURABILITY.md).
"""

import pytest

from repro.chaos.fleet_soak import FleetSoakConfig
from repro.chaos.kill_restart import (
    KillRestartConfig,
    plan_crash_points,
    run_kill_restart,
)
from repro.errors import UserInputError
from repro.faults.plan import StorageFault

#: Small but complete: both device types, a replica kill *and* process
#: crashes in the same cell.  Seed 7's crash points land after the
#: first completions, so recovery genuinely restores durable results.
SOAK = FleetSoakConfig(seed=7, jobs=8, replicas=("U280", "U50"),
                       random_kills=1)


@pytest.fixture(scope="module")
def corrupted_cell(tmp_path_factory):
    """One full cell: 2 crashes, torn journal tail + store bit rot."""
    config = KillRestartConfig(
        soak=SOAK,
        crashes=2,
        storage_faults=(
            StorageFault(kind="torn-write", target="journal"),
            StorageFault(kind="bit-flip", record=-1, target="store"),
        ),
        fsync=False,
    )
    workdir = tmp_path_factory.mktemp("kill-restart")
    return run_kill_restart(config, workdir), workdir


class TestCell:
    def test_all_oracles_pass_under_corruption(self, corrupted_cell):
        result, _ = corrupted_cell
        assert result.equivalent
        assert result.lost_jobs == []
        assert result.duplicate_results == 0
        assert result.replay_divergences == 0
        assert result.journal_complete
        assert result.passed

    def test_crashes_actually_happened(self, corrupted_cell):
        result, _ = corrupted_cell
        assert result.restarts == 2
        assert len(result.crash_points) == 2
        assert result.crash_points[0] < result.crash_points[1]
        # Durable work was reused, not redone from nothing.
        assert result.results_restored > 0
        assert result.duplicates_suppressed > 0

    def test_corruption_was_contained_not_fatal(self, corrupted_cell):
        result, workdir = corrupted_cell
        assert len(result.storage_fault_log) == 2
        # The torn journal tail was truncated; the store bit-flip was
        # dropped at load (it never reaches the journal quarantine).
        assert result.truncated_bytes > 0
        assert (workdir / "fleet.journal").exists()

    def test_result_serialises(self, corrupted_cell):
        result, _ = corrupted_cell
        data = result.to_dict()
        assert data["passed"] is True
        assert data["equivalent"] is True
        assert data["crash_points"] == result.crash_points
        assert KillRestartConfig.from_dict(data["config"]) == result.config


class TestCleanCell:
    def test_single_crash_no_corruption(self, tmp_path):
        config = KillRestartConfig(soak=SOAK, crashes=1, fsync=False)
        result = run_kill_restart(config, tmp_path)
        assert result.passed
        assert result.restarts == 1
        assert result.quarantined_records == 0


class TestConfig:
    def test_round_trip(self):
        config = KillRestartConfig(
            soak=SOAK,
            crashes=3,
            storage_faults=(StorageFault(kind="partial-fsync"),),
            fsync=False,
        )
        assert KillRestartConfig.from_dict(config.to_dict()) == config

    def test_needs_at_least_one_crash(self):
        with pytest.raises(UserInputError, match=">= 1 crash"):
            KillRestartConfig(crashes=0)


class TestCrashPoints:
    def test_deterministic_in_seed(self):
        assert plan_crash_points(40, 3, seed=9) == \
            plan_crash_points(40, 3, seed=9)
        assert plan_crash_points(40, 3, seed=9) != \
            plan_crash_points(40, 3, seed=10)

    def test_strictly_increasing_inside_the_run(self):
        points = plan_crash_points(25, 4, seed=1)
        assert points == sorted(set(points))
        assert points[0] >= 1
        # At least one event remains after the last crash.
        assert points[-1] <= 24

    def test_capped_at_events_minus_one(self):
        assert len(plan_crash_points(3, 10, seed=0)) == 2

    def test_too_short_run_is_typed(self):
        with pytest.raises(UserInputError, match="too short"):
            plan_crash_points(1, 1, seed=0)
