"""Tests for dynamic scheduling and plan serialization."""

import pytest

from repro.sched.dynamic import (
    _simulate_queue,
    dynamic_makespan,
    static_makespan,
)
from repro.sched.scheduler import build_schedule
from repro.sched.serialize import (
    load_plan_summary,
    plan_to_dict,
    save_plan,
    verify_plan_against,
)


@pytest.fixture()
def plan(rmat_partitions, perf_model):
    return build_schedule(rmat_partitions, perf_model, 4)


class TestQueueSimulation:
    def test_single_pipeline_serialises(self):
        sched = _simulate_queue([3.0, 4.0, 5.0], 1, pull_overhead=0.0)
        assert sched.makespan == 12.0

    def test_balanced_split(self):
        sched = _simulate_queue([5.0, 5.0, 5.0, 5.0], 2, pull_overhead=0.0)
        assert sched.makespan == 10.0

    def test_pull_overhead_charged(self):
        free = _simulate_queue([1.0] * 4, 2, pull_overhead=0.0)
        taxed = _simulate_queue([1.0] * 4, 2, pull_overhead=10.0)
        assert taxed.makespan > free.makespan

    def test_zero_pipelines(self):
        assert _simulate_queue([1.0], 0, 0.0).makespan == 0.0

    def test_greedy_respects_longest_task(self):
        sched = _simulate_queue([9.0, 1.0, 1.0, 1.0], 2, pull_overhead=0.0)
        assert sched.makespan == 9.0


class TestMakespans:
    def test_static_close_to_dynamic(self, plan):
        static = static_makespan(plan)
        dynamic = dynamic_makespan(plan)
        assert static <= 1.4 * dynamic

    def test_static_positive(self, plan):
        assert static_makespan(plan) > 0

    def test_dynamic_includes_overhead(self, plan):
        cheap = dynamic_makespan(plan, pull_overhead=0.0)
        taxed = dynamic_makespan(plan, pull_overhead=5_000.0)
        assert taxed > cheap

    def test_lpt_no_worse_than_fifo(self, plan):
        lpt = dynamic_makespan(plan, longest_first=True)
        fifo = dynamic_makespan(plan, longest_first=False)
        assert lpt <= 1.1 * fifo


class TestSerialize:
    def test_roundtrip(self, plan, tmp_path):
        path = save_plan(plan, tmp_path / "plan.json")
        summary = load_plan_summary(path)
        assert summary["accelerator"]["num_little"] == plan.accelerator.num_little
        assert summary["total_edges"] == plan.total_edges()

    def test_dict_structure(self, plan):
        d = plan_to_dict(plan)
        assert len(d["little_tasks"]) == plan.accelerator.num_little
        assert len(d["big_tasks"]) == plan.accelerator.num_big
        little_edges = sum(
            t["edges"] for tasks in d["little_tasks"] for t in tasks
        )
        big_edges = sum(
            sum(t["edges"]) for tasks in d["big_tasks"] for t in tasks
        )
        assert little_edges + big_edges == d["total_edges"]

    def test_verify_accepts_matching(self, plan, rmat_partitions):
        summary = plan_to_dict(plan)
        assert verify_plan_against(summary, rmat_partitions, plan.accelerator)

    def test_verify_rejects_wrong_shape(self, plan, rmat_partitions):
        from repro.arch.config import AcceleratorConfig

        summary = plan_to_dict(plan)
        other = AcceleratorConfig(
            plan.accelerator.num_little + 1,
            max(plan.accelerator.num_big - 1, 0) or 1,
            plan.accelerator.pipeline,
        )
        assert not verify_plan_against(summary, rmat_partitions, other)

    def test_verify_rejects_wrong_buffer(self, plan, rmat_partitions):
        from repro.arch.config import AcceleratorConfig, PipelineConfig

        summary = plan_to_dict(plan)
        other = AcceleratorConfig(
            plan.accelerator.num_little,
            plan.accelerator.num_big,
            PipelineConfig(gather_buffer_vertices=64),
        )
        assert not verify_plan_against(summary, rmat_partitions, other)
