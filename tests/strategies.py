"""Reusable hypothesis strategies for the property-based test layer.

One vocabulary of generators shared by every property suite: raw edge
lists, COO graphs (optionally weighted), partition sets, scheduling
plans and fault plans.  Strategies are deliberately small — property
tests here run full DBG + scheduling + simulation per example, so the
value of each example is in its *shape* (skew, empty partitions, self
loops, parallel edges), not its size.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.chaos.spec import GraphSpec
from repro.compiled import CompiledSpec
from repro.faults.plan import (
    BitFlipFault,
    DeadChannelFault,
    FaultPlan,
    LatencySpikeFault,
    PipelineStallFault,
)
from repro.fleet.job import FLEET_APPS, Job
from repro.graph.coo import Graph
from repro.graph.partition import partition_graph
from repro.hbm.channel import HbmChannelModel, HbmTimingParams
from repro.model.calibrate import calibrate_performance_model
from repro.sched.scheduler import build_schedule

#: Shared small pipeline config for plan-producing strategies.
STRATEGY_CONFIG = PipelineConfig(gather_buffer_vertices=32)

#: One calibrated model reused across all drawn plans (calibration is
#: deterministic and depends only on the config + channel).
STRATEGY_MODEL = calibrate_performance_model(
    STRATEGY_CONFIG, HbmChannelModel()
)


@st.composite
def edge_lists(draw, min_vertices=2, max_vertices=64, max_edges=200):
    """Random ``(num_vertices, src, dst)`` triples."""
    n = draw(st.integers(min_vertices, max_vertices))
    m = draw(st.integers(1, max_edges))
    src = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    dst = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    return n, src, dst


@st.composite
def graphs(
    draw,
    min_vertices=4,
    max_vertices=80,
    max_edges=300,
    weighted=False,
    name="prop",
):
    """Random COO graphs, optionally with positive integer weights."""
    n, src, dst = draw(
        edge_lists(min_vertices, max_vertices, max_edges)
    )
    weights = None
    if weighted:
        weights = draw(
            st.lists(
                st.integers(1, 31), min_size=len(src), max_size=len(src)
            )
        )
    return Graph(n, src, dst, weights=weights, name=name)


def weighted_graphs(**kwargs):
    """Random weighted graphs (SSSP/SpMV-shaped inputs)."""
    return graphs(weighted=True, **kwargs)


@st.composite
def partition_sets(draw, interval_range=(1, 16), **graph_kwargs):
    """A graph partitioned at a drawn destination-interval size."""
    graph = draw(graphs(**graph_kwargs))
    interval = draw(st.integers(*interval_range))
    return partition_graph(graph, interval)


@st.composite
def scheduling_plans(draw, max_pipelines=4, **graph_kwargs):
    """A full model-guided scheduling plan over a random graph.

    Uses :data:`STRATEGY_CONFIG`'s interval so plan and model agree, the
    way the framework builds them; returns ``(graph, plan)``.
    """
    graph = draw(graphs(**graph_kwargs))
    num_pipelines = draw(st.integers(1, max_pipelines))
    pset = partition_graph(graph, STRATEGY_CONFIG.partition_vertices)
    plan = build_schedule(pset, STRATEGY_MODEL, num_pipelines)
    return graph, plan


@st.composite
def channel_param_perturbations(draw):
    """Valid :class:`HbmTimingParams` drawn around the silicon defaults.

    The perturbation ranges keep the frozen-dataclass invariants
    (``max_latency >= min_latency``, ``max_outstanding >= 1``) while
    covering the band the model sweeps explore — the inputs the
    compiled evaluator must re-time without recompiling.
    """
    min_latency = draw(st.floats(4.0, 64.0, allow_nan=False))
    extra = draw(st.floats(0.0, 96.0, allow_nan=False))
    return HbmTimingParams(
        min_latency=min_latency,
        max_latency=min_latency + extra,
        latency_per_stride_byte=draw(
            st.floats(0.0, 0.05, allow_nan=False)
        ),
        max_outstanding=draw(st.integers(1, 64)),
        burst_blocks_per_cycle=draw(
            st.floats(0.25, 2.0, allow_nan=False)
        ),
    )


@st.composite
def compiled_specs(draw):
    """Device × pipeline-combo × channel-param compiled-spec space.

    Drives the spec digest key-injectivity test and lets conformance /
    chaos properties pin the compiled path to arbitrary bindings.
    """
    num_little = draw(st.integers(0, 4))
    num_big = draw(st.integers(0 if num_little else 1, 4))
    return CompiledSpec(
        device=draw(st.sampled_from(("U280", "U50", ""))),
        accelerator=AcceleratorConfig(
            num_little=num_little,
            num_big=num_big,
            pipeline=STRATEGY_CONFIG,
        ),
        channel=draw(channel_param_perturbations()),
        edge_bytes=draw(st.sampled_from((8, 12))),
    )


@st.composite
def fault_plans(draw, max_channels=8):
    """Random deterministic fault plans over a small channel space."""
    dead = draw(st.lists(
        st.builds(
            DeadChannelFault,
            channel=st.integers(0, max_channels - 1),
            onset_cycle=st.floats(0, 1e6, allow_nan=False),
        ),
        max_size=2, unique_by=lambda f: f.channel,
    ))
    spikes = draw(st.lists(
        st.builds(
            LatencySpikeFault,
            channel=st.integers(0, max_channels - 1),
            onset_cycle=st.floats(0, 1e6, allow_nan=False),
            duration_cycles=st.floats(1, 1e6, allow_nan=False),
            multiplier=st.floats(1, 64, allow_nan=False),
        ),
        max_size=2,
    ))
    flips = draw(st.lists(
        st.builds(
            BitFlipFault,
            probability=st.floats(0, 1, allow_nan=False),
            detectable=st.booleans(),
        ),
        max_size=1,
    ))
    stalls = draw(st.lists(
        st.builds(
            PipelineStallFault,
            probability=st.floats(0, 1, allow_nan=False),
            pipeline=st.one_of(st.none(), st.integers(0, 3)),
        ),
        max_size=1,
    ))
    return FaultPlan(
        seed=draw(st.integers(0, 2**16)),
        dead_channels=tuple(dead),
        latency_spikes=tuple(spikes),
        bit_flips=tuple(flips),
        stalls=tuple(stalls),
    )


@st.composite
def fleet_job_specs(draw, index=0, with_faults=True):
    """One fleet job: app, graph recipe, deadline, priority, faults.

    Graphs stay small (the fleet property suite serves whole job mixes
    through full simulations per example); ``sssp`` draws get weighted
    graph specs, matching the app's requirement.
    """
    app = draw(st.sampled_from(FLEET_APPS))
    vertices = draw(st.integers(32, 192))
    graph = GraphSpec(
        kind=draw(st.sampled_from(("uniform", "rmat", "powerlaw"))),
        vertices=vertices,
        edges=vertices * draw(st.integers(2, 6)),
        seed=draw(st.integers(1, 10_000)),
        weighted=(app == "sssp"),
    )
    deadline = draw(st.one_of(
        st.none(), st.floats(1e-4, 0.05, allow_nan=False)
    ))
    plan = draw(fault_plans()) if with_faults and draw(
        st.booleans()
    ) else FaultPlan()
    return Job(
        job_id=f"prop{index:03d}",
        app=app,
        graph=graph,
        max_iterations=draw(st.integers(1, 8)),
        priority=draw(st.integers(0, 2)),
        deadline_seconds=deadline,
        submit_time=draw(st.floats(0, 0.005, allow_nan=False)),
        fault_plan=plan,
    )


@st.composite
def fleet_job_mixes(draw, min_jobs=1, max_jobs=6, with_faults=True):
    """A whole submission batch, ordered by submit time."""
    count = draw(st.integers(min_jobs, max_jobs))
    jobs = [
        draw(fleet_job_specs(index=i, with_faults=with_faults))
        for i in range(count)
    ]
    return sorted(jobs, key=lambda j: (j.submit_time, j.job_id))
