"""Tests for the SSD-tiered storage extension and the Shuhai suite."""

import pytest

from repro.hbm.channel import HbmChannelModel
from repro.hbm.shuhai import run_shuhai_suite
from repro.hbm.tiered import (
    SsdTierConfig,
    estimate_tiered_iteration,
    estimate_tiered_plan,
    graph_needs_tiering,
)


class TestTieringDecision:
    def test_small_graph_fits(self):
        assert not graph_needs_tiering(10**6, 8, 10**5)

    def test_billion_edge_graph_needs_tiering(self):
        # 2B edges * 8 B = 16 GB of edge data > 8 GB of HBM.
        assert graph_needs_tiering(2 * 10**9, 8, 10**8)


class TestTransferModel:
    def test_zero_bytes_free(self):
        assert SsdTierConfig().transfer_seconds(0) == 0.0

    def test_bandwidth_dominates_large_transfers(self):
        cfg = SsdTierConfig()
        size = 10**9
        assert cfg.transfer_seconds(size) == pytest.approx(
            size / cfg.read_bytes_per_second, rel=0.05
        )

    def test_latency_dominates_small_transfers(self):
        cfg = SsdTierConfig()
        assert cfg.transfer_seconds(64) >= cfg.request_latency_seconds


class TestOverlapModel:
    def test_compute_bound_tiering_nearly_free(self):
        # Execution 10x the transfer: double buffering hides the SSD.
        est = estimate_tiered_iteration(
            [1.0, 1.0, 1.0], [int(0.1 * 3.2e9)] * 3
        )
        assert est.slowdown < 1.2
        assert not est.transfer_bound

    def test_transfer_bound_tiering_costs(self):
        est = estimate_tiered_iteration(
            [0.01, 0.01, 0.01], [int(3.2e9)] * 3
        )
        assert est.transfer_bound
        assert est.slowdown > 5.0

    def test_single_buffer_serialises(self):
        exec_s = [0.5, 0.5]
        sizes = [int(1.6e9), int(1.6e9)]
        double = estimate_tiered_iteration(exec_s, sizes)
        single = estimate_tiered_iteration(
            exec_s, sizes, SsdTierConfig(staging_buffers=1)
        )
        assert single.overlapped_seconds > double.overlapped_seconds

    def test_empty_task_list(self):
        est = estimate_tiered_iteration([], [])
        assert est.overlapped_seconds == 0.0
        assert est.slowdown == 1.0

    def test_misaligned_lists_raise(self):
        with pytest.raises(ValueError):
            estimate_tiered_iteration([1.0], [])

    def test_plan_level_estimates(self, rmat_partitions, perf_model):
        from repro.sched.scheduler import build_schedule

        plan = build_schedule(rmat_partitions, perf_model, 4)
        estimates = estimate_tiered_plan(plan, frequency_mhz=270.0)
        assert len(estimates) == 4
        for est in estimates:
            assert est.overlapped_seconds >= est.execute_seconds


class TestShuhai:
    def test_report_covers_patterns(self, channel):
        report = run_shuhai_suite(channel)
        patterns = set(report.by_pattern())
        assert patterns == {"sequential", "strided", "random"}

    def test_sequential_full_bandwidth(self, channel):
        report = run_shuhai_suite(channel)
        assert report.sequential_bandwidth_fraction() == pytest.approx(1.0)

    def test_strided_bandwidth_monotone_decreasing(self, channel):
        report = run_shuhai_suite(channel)
        strided = report.by_pattern()["strided"]
        fracs = [r.effective_bandwidth_fraction for r in strided]
        assert all(a >= b for a, b in zip(fracs, fracs[1:]))

    def test_random_no_better_than_worst_stride(self, channel):
        report = run_shuhai_suite(channel)
        strided = report.by_pattern()["strided"]
        random = report.by_pattern()["random"][0]
        assert random.cycles_per_block >= max(
            r.cycles_per_block for r in strided
        ) * 0.9

    def test_knee_within_sweep(self, channel):
        strides = [64, 1024, 8192, 65536]
        report = run_shuhai_suite(channel, strides=strides)
        assert report.knee_stride_bytes in strides

    def test_deterministic(self, channel):
        a = run_shuhai_suite(channel, seed=5)
        b = run_shuhai_suite(channel, seed=5)
        assert a.results == b.results
