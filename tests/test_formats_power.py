"""Tests for binary graph persistence and the FPGA power model."""

import numpy as np
import pytest

from repro.arch.config import AcceleratorConfig, PipelineConfig
from repro.arch.platform import get_platform
from repro.arch.power import (
    FpgaPowerModel,
    estimated_execution_watts,
)
from repro.arch.resources import report
from repro.graph.formats import save_npz, load_npz


class TestNpzFormats:
    def test_roundtrip_unweighted(self, small_rmat, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(small_rmat, path)
        back = load_npz(path)
        assert back.num_vertices == small_rmat.num_vertices
        np.testing.assert_array_equal(back.src, small_rmat.src)
        np.testing.assert_array_equal(back.dst, small_rmat.dst)
        assert back.name == small_rmat.name

    def test_roundtrip_weighted(self, tiny_graph, tmp_path):
        g = tiny_graph.with_weights(np.arange(8))
        path = tmp_path / "w.npz"
        save_npz(g, path)
        back = load_npz(path)
        np.testing.assert_array_equal(back.weights, np.arange(8))

    def test_unweighted_loads_without_weights(self, tiny_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(tiny_graph, path)
        assert load_npz(path).weights is None

    def test_future_version_rejected(self, tiny_graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(tiny_graph, path)
        data = dict(np.load(path, allow_pickle=False))
        data["version"] = np.array([99])
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_npz(path)


def _u280_report(m=7, n=7):
    return report(
        AcceleratorConfig(m, n, PipelineConfig(gather_buffer_vertices=65_536)),
        get_platform("U280"),
    )


class TestPowerModel:
    def test_u280_lands_at_table6(self):
        """Table VI: 35 W measured during execution on the U280."""
        watts = estimated_execution_watts(_u280_report(), get_platform("U280"))
        assert watts == pytest.approx(35.0, abs=3.0)

    def test_u50_below_tdp(self):
        u50 = get_platform("U50")
        rep = report(
            AcceleratorConfig(
                6, 6, PipelineConfig(gather_buffer_vertices=32_768)
            ),
            u50,
        )
        watts = estimated_execution_watts(rep, u50)
        assert watts < u50.tdp_watts

    def test_power_grows_with_logic(self):
        model = FpgaPowerModel()
        small = model.watts(_u280_report(2, 2), active_channels=32)
        large = model.watts(_u280_report(7, 7), active_channels=32)
        assert large > small

    def test_idle_memory_cheaper(self):
        model = FpgaPowerModel()
        rep = _u280_report()
        busy = model.watts(rep, 32, memory_activity=1.0)
        idle = model.watts(rep, 32, memory_activity=0.2)
        assert idle < busy

    def test_invalid_activity_rejected(self):
        with pytest.raises(ValueError):
            FpgaPowerModel().watts(_u280_report(), 32, memory_activity=1.5)

    def test_efficiency_metric(self):
        model = FpgaPowerModel()
        assert model.gteps_per_watt(7.0, 35.0) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            model.gteps_per_watt(1.0, 0.0)

    def test_energy(self):
        assert FpgaPowerModel().energy_joules(35.0, 2.0) == 70.0
