"""SQLite job store and traffic bundle: the serving durability pair.

Covers the contracts the gateway's crash-safety rests on: the store's
write-ahead role (acks are durable rows; results are exactly-once under
their idempotency key; schema and session mismatches are typed), and
the traffic bundle's flight-recorder role (accepts in order, resume
markers, first-copy-wins dedup, damage tolerance, and bit-identical
replay of the recorded digest).
"""

import pytest

from repro.chaos.fleet_soak import FleetSoakConfig, generate_jobs
from repro.errors import UserInputError
from repro.fleet.job import JobResult
from repro.serving.config import ServingConfig
from repro.serving.jobstore import JOBSTORE_SCHEMA, SqliteJobStore
from repro.serving.session import KernelSession
from repro.serving.traffic import (
    TRAFFIC_SCHEMA,
    TrafficRecorder,
    read_traffic,
    replay_traffic,
)

SOAK = FleetSoakConfig(jobs=4, seed=5, replicas=("U280", "U50"))
SERVING = ServingConfig(fsync=False)


@pytest.fixture(scope="module")
def payloads():
    return [job.to_dict() for job in generate_jobs(SOAK)]


def _result(job_id, status="completed"):
    return JobResult(job_id=job_id, status=status, replica_id="r0")


class TestJobStore:
    def test_jobs_round_trip_in_acceptance_order(self, tmp_path, payloads):
        with SqliteJobStore(tmp_path / "jobs.sqlite", fsync=False) as store:
            for i, payload in enumerate(payloads):
                seq = store.append_job("acme", payload, accepted_wall=0.5 * i)
                assert store.job_seq(payload["job_id"]) == seq
            assert store.job_count() == len(payloads)
            rows = store.jobs_in_order()
            assert [p["job_id"] for _, _, p in rows] == [
                p["job_id"] for p in payloads
            ]
            assert all(tenant == "acme" for _, tenant, _ in rows)

    def test_double_accept_is_typed(self, tmp_path, payloads):
        with SqliteJobStore(tmp_path / "jobs.sqlite", fsync=False) as store:
            store.append_job("acme", payloads[0])
            with pytest.raises(UserInputError):
                store.append_job("acme", payloads[0])

    def test_results_are_exactly_once(self, tmp_path, payloads):
        with SqliteJobStore(tmp_path / "jobs.sqlite", fsync=False) as store:
            store.append_job("acme", payloads[0])
            job_id = payloads[0]["job_id"]
            first = _result(job_id)
            assert store.put_result(first)
            # The second write is the replay duplicate: suppressed,
            # counted, and the durable copy stays the first one.
            second = _result(job_id, status="failed")
            assert not store.put_result(second)
            assert store.duplicates_suppressed == 1
            assert store.get_result(job_id).status == "completed"
            assert store.result_count() == 1

    def test_outstanding_is_the_resume_debt(self, tmp_path, payloads):
        with SqliteJobStore(tmp_path / "jobs.sqlite", fsync=False) as store:
            for payload in payloads[:3]:
                store.append_job("acme", payload)
            store.put_result(_result(payloads[0]["job_id"]))
            assert store.outstanding() == [
                payloads[1]["job_id"], payloads[2]["job_id"]
            ]
            assert store.stats()["outstanding"] == 2

    def test_rows_survive_reopen(self, tmp_path, payloads):
        path = tmp_path / "jobs.sqlite"
        with SqliteJobStore(path, fsync=False) as store:
            store.append_job("acme", payloads[0])
            store.put_result(_result(payloads[0]["job_id"]))
        with SqliteJobStore(path, fsync=False) as store:
            assert store.has_job(payloads[0]["job_id"])
            assert store.get_result(payloads[0]["job_id"]) is not None

    def test_schema_mismatch_is_typed(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        with SqliteJobStore(path, fsync=False) as store:
            store._db.execute(
                "UPDATE meta SET value='regraph-jobstore/v0' "
                "WHERE key='schema'"
            )
        with pytest.raises(UserInputError, match=JOBSTORE_SCHEMA):
            SqliteJobStore(path, fsync=False)

    def test_session_spec_mismatch_is_typed(self, tmp_path):
        path = tmp_path / "jobs.sqlite"
        with SqliteJobStore(path, fsync=False) as store:
            store.set_session_spec(SERVING.session_spec())
            store.set_session_spec(SERVING.session_spec())  # same: fine
            other = ServingConfig(devices=("U280",), fsync=False)
            with pytest.raises(UserInputError, match="different"):
                store.set_session_spec(other.session_spec())

    def test_non_sqlite_file_is_typed(self, tmp_path):
        path = tmp_path / "not-a-db.sqlite"
        path.write_text("this is not a database\n" * 100)
        with pytest.raises(UserInputError, match="not a usable"):
            SqliteJobStore(path, fsync=False)


class TestTrafficBundle:
    def _record(self, path, payloads, digest="d" * 64):
        with TrafficRecorder(path, SERVING.session_spec(),
                             fsync=False) as rec:
            for i, payload in enumerate(payloads):
                rec.record_accept(i, "acme", payload, wall=0.1 * i)
            rec.record_reject("acme", "late-job", "FleetOverloadError",
                              "shed", wall=9.0)
            rec.record_result(_result(payloads[0]["job_id"]), wall=9.5)
            rec.record_end(digest, {"accepts": len(payloads)})

    def test_round_trip(self, tmp_path, payloads):
        path = tmp_path / "traffic.jsonl"
        self._record(path, payloads)
        bundle = read_traffic(path)
        assert bundle.spec == SERVING.session_spec()
        assert bundle.job_payloads() == payloads
        assert len(bundle.rejects) == 1
        assert payloads[0]["job_id"] in bundle.results
        assert bundle.drained
        assert bundle.corrupt_lines == 0
        summary = bundle.summary()
        assert summary["schema"] == TRAFFIC_SCHEMA
        assert summary["recorded_digest"] == "d" * 64

    def test_reopen_continues_with_a_resume_marker(self, tmp_path, payloads):
        path = tmp_path / "traffic.jsonl"
        self._record(path, payloads[:2])
        # A recovered gateway reopens the bundle and repeats the accepts
        # it restored; first copy wins, so the sequence stays
        # exactly-once even though the file now holds each twice.
        with TrafficRecorder(path, SERVING.session_spec(),
                             fsync=False) as rec:
            for i, payload in enumerate(payloads[:2]):
                rec.record_accept(i, "acme", payload, wall=5.0)
            rec.record_accept(2, "acme", payloads[2], wall=6.0)
        bundle = read_traffic(path)
        assert bundle.job_payloads() == payloads[:3]

    def test_corrupt_lines_are_skipped_and_counted(self, tmp_path, payloads):
        path = tmp_path / "traffic.jsonl"
        self._record(path, payloads)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not a journal line at all\n")
        bundle = read_traffic(path)
        assert bundle.corrupt_lines == 1
        assert bundle.job_payloads() == payloads  # damage never blocks

    def test_unknown_record_type_is_typed(self, tmp_path):
        rec = TrafficRecorder(tmp_path / "t.jsonl", SERVING.session_spec(),
                              fsync=False)
        with pytest.raises(UserInputError, match="unknown traffic record"):
            rec.append("checkpoint", {})
        rec.close()

    def test_missing_bundle_is_typed(self, tmp_path):
        with pytest.raises(UserInputError, match="not found"):
            read_traffic(tmp_path / "nope.jsonl")

    def test_replay_reproduces_the_live_digest(self, tmp_path, payloads):
        # Live: the pure kernel session, no transport at all.
        live = KernelSession(SERVING.session_spec())
        live.replay(payloads)
        path = tmp_path / "traffic.jsonl"
        self._record(path, payloads, digest=live.digest())
        session, bundle = replay_traffic(path)
        assert session.digest() == live.digest()
        assert session.digest() == bundle.summary()["recorded_digest"]

    def test_replay_without_a_spec_needs_an_override(self, tmp_path,
                                                     payloads):
        path = tmp_path / "traffic.jsonl"
        self._record(path, payloads)
        lines = path.read_text().splitlines(keepends=True)
        # Damage the only spec-bearing record (traffic-begin).
        path.write_text("x" + lines[0][1:] + "".join(lines[1:]))
        with pytest.raises(UserInputError, match="no intact session spec"):
            replay_traffic(path)
        session, _ = replay_traffic(
            path, spec_override=SERVING.session_spec()
        )
        assert len(session.served_jobs) == len(payloads)
