"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    @pytest.mark.parametrize(
        "command",
        ["datasets", "shuhai", "selfcheck",
         "preprocess --dataset GG", "run --dataset GG",
         "sweep --dataset GG", "codegen"],
    )
    def test_commands_parse(self, command):
        args = build_parser().parse_args(command.split())
        assert args.command == command.split()[0]


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "rmat-21-32" in out and "orkut" in out

    def test_shuhai(self, capsys):
        assert main(["shuhai"]) == 0
        out = capsys.readouterr().out
        assert "sequential" in out and "knee" in out

    def test_preprocess(self, capsys):
        code = main(
            ["preprocess", "--dataset", "GG", "--scale", "0.005",
             "--buffer-vertices", "256", "--pipelines", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "accelerator:" in out and "partitions:" in out

    def test_run_bfs(self, capsys):
        code = main(
            ["run", "--dataset", "GG", "--scale", "0.005",
             "--buffer-vertices", "256", "--pipelines", "4",
             "--app", "bfs"]
        )
        assert code == 0
        assert "MTEPS" in capsys.readouterr().out

    def test_run_pagerank_capped(self, capsys):
        code = main(
            ["run", "--dataset", "AM", "--scale", "0.005",
             "--buffer-vertices", "256", "--pipelines", "4",
             "--app", "pagerank", "--iterations", "2"]
        )
        assert code == 0
        assert "iterations: 2" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main(
            ["sweep", "--dataset", "GG", "--scale", "0.005",
             "--buffer-vertices", "256", "--pipelines", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "0L3B" in out and "3L0B" in out and "selected" in out

    def test_codegen(self, tmp_path, capsys):
        code = main(["codegen", "--output", str(tmp_path)])
        assert code == 0
        assert (tmp_path / "7L7B" / "manifest.json").exists()

    def test_run_from_edge_list(self, tmp_path, capsys, tiny_graph):
        from repro.graph.io import write_edge_list

        path = tmp_path / "g.el"
        write_edge_list(tiny_graph, path)
        code = main(
            ["run", "--edge-list", str(path), "--buffer-vertices", "4",
             "--pipelines", "2", "--app", "bfs"]
        )
        assert code == 0

    def test_missing_graph_source_exits(self):
        with pytest.raises(SystemExit):
            main(["preprocess"])

    def test_check_quick(self, capsys):
        code = main(["check", "--device", "u280", "--app", "pagerank",
                     "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "oracle checks passed" in out
        assert "violation" in out


class TestErrorPaths:
    """The CLI's exit-code contract: usage errors exit 2 via argparse,
    user errors (bad keys, unreadable files, unrecoverable fault
    scenarios) print one line on stderr and return 2 — never a
    traceback."""

    def test_unknown_subcommand_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["frobnicate"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_bad_dataset_key_returns_2(self, capsys):
        assert main(["run", "--dataset", "NOPE"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "NOPE" in err

    def test_missing_edge_list_returns_2(self, tmp_path, capsys):
        missing = tmp_path / "does-not-exist.el"
        assert main(["run", "--edge-list", str(missing)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_malformed_edge_list_returns_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.el"
        bad.write_text("0 1\nnot an edge\n")
        assert main(["run", "--edge-list", str(bad),
                     "--buffer-vertices", "4", "--pipelines", "2"]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_check_unknown_app_returns_2(self, capsys):
        assert main(["check", "--app", "nope", "--quick"]) == 2
        err = capsys.readouterr().err
        assert "unknown oracle app" in err

    def test_faultsim_exhaustion_returns_2(self, capsys):
        # Every drain attempt flips a bit; one retry cannot absorb that,
        # so the resilient runtime gives up -> ResilienceExhaustedError
        # -> exit code 2 (the documented unrecoverable-scenario contract).
        code = main(
            ["faultsim", "--dataset", "GG", "--scale", "0.005",
             "--buffer-vertices", "256", "--pipelines", "2",
             "--bit-flip-rate", "1.0", "--retries", "1"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "failed" in err

    def test_faultsim_dead_channel_degrades_but_succeeds(self, capsys):
        # A dead channel is survivable: the runtime retires the victim
        # pipeline and re-plans onto the rest, so the exit code stays 0.
        code = main(
            ["faultsim", "--dataset", "GG", "--scale", "0.005",
             "--buffer-vertices", "256", "--pipelines", "2",
             "--dead-channel", "0", "--retries", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degraded" in out


class TestFleetCli:
    """``repro fleet run|status|report`` and its error contract."""

    RUN = ["fleet", "run", "--num-jobs", "6", "--fleet-seed", "3",
           "--kill", "0@0.001"]

    def test_run_passes_and_prints_summary(self, capsys):
        assert main(self.RUN) == 0
        out = capsys.readouterr().out
        assert "fleet soak: 6 jobs" in out
        assert "kill: r0" in out
        assert "soak PASSED" in out

    def test_run_report_status_round_trip(self, tmp_path, capsys):
        report = tmp_path / "fleet.json"
        assert main(self.RUN + ["--report-json", str(report)]) == 0
        assert report.exists()
        capsys.readouterr()

        assert main(["fleet", "status", str(report)]) == 0
        out = capsys.readouterr().out
        assert "r0 [U280] RETIRED" in out
        assert "admission:" in out

        assert main(["fleet", "report", str(report)]) == 0
        out = capsys.readouterr().out
        assert "jobs completed" in out

    def test_unknown_device_lists_valid_names(self, capsys):
        """The satellite contract: an unknown device surfaces the
        host API's typed error naming every valid device, exit 2."""
        from repro.runtime.host import list_devices

        assert main(["fleet", "run", "--num-jobs", "1",
                     "--replica", "U9000"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "U9000" in err
        for name in list_devices():
            assert name in err

    def test_bad_kill_spec_returns_2(self, capsys):
        assert main(["fleet", "run", "--num-jobs", "1",
                     "--kill", "banana"]) == 2
        err = capsys.readouterr().err
        assert "bad --kill spec" in err

    def test_missing_report_file_returns_2(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["fleet", "status", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "fleet run" in err  # the hint names the producing command

    def test_empty_report_file_returns_2(self, tmp_path, capsys):
        empty = tmp_path / "empty.json"
        empty.touch()
        assert main(["fleet", "report", str(empty)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "empty" in err

    def test_garbage_report_file_returns_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["fleet", "status", str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_wrong_shape_report_returns_2(self, tmp_path, capsys):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]")
        assert main(["fleet", "status", str(bad)]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_malformed_report_returns_2(self, tmp_path, capsys):
        bad = tmp_path / "partial.json"
        bad.write_text('{"soak_config": {}, "report": null}')
        assert main(["fleet", "report", str(bad)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "malformed" in err


class TestFleetDurabilityCli:
    """``fleet run --journal/--crash-after`` and ``fleet resume``
    (docs/DURABILITY.md)."""

    def _run(self, tmp_path, extra):
        journal = tmp_path / "fleet.journal"
        store = tmp_path / "results.jsonl"
        base = ["fleet", "run", "--num-jobs", "4", "--fleet-seed", "3",
                "--journal", str(journal), "--store", str(store),
                "--no-fsync"]
        return journal, store, main(base + extra)

    def test_crash_exits_3_with_resume_hint(self, tmp_path, capsys):
        journal, store, code = self._run(tmp_path, ["--crash-after", "3"])
        assert code == 3
        out = capsys.readouterr().out
        assert "fleet hard-killed" in out
        assert "repro fleet resume" in out
        assert journal.exists() and store.exists()

    def test_resume_finishes_the_run(self, tmp_path, capsys):
        journal, store, code = self._run(tmp_path, ["--crash-after", "3"])
        assert code == 3
        capsys.readouterr()
        assert main(["fleet", "resume", str(journal),
                     "--store", str(store), "--no-fsync"]) == 0
        out = capsys.readouterr().out
        assert "soak PASSED" in out

    def test_journaled_run_to_completion(self, tmp_path, capsys):
        journal, store, code = self._run(tmp_path, [])
        assert code == 0
        assert "soak PASSED" in capsys.readouterr().out
        assert journal.exists()

    def test_store_requires_journal(self, tmp_path, capsys):
        assert main(["fleet", "run", "--num-jobs", "1",
                     "--store", str(tmp_path / "s.jsonl")]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_crash_after_requires_journal(self, tmp_path, capsys):
        assert main(["fleet", "run", "--num-jobs", "1",
                     "--crash-after", "2"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_resume_missing_journal_returns_2(self, tmp_path, capsys):
        assert main(["fleet", "resume",
                     str(tmp_path / "absent.journal")]) == 2
        assert capsys.readouterr().err.startswith("error:")
