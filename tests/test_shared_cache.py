"""The shared on-disk timing store (tier 2) and its tiering contract.

The load-bearing properties: published entries are immutable and
first-write-wins under any number of concurrent writers; damaged or
stale entries are quarantined and read as misses (corruption costs
time, never correctness); keys are injective over their inputs so the
two tiers can never alias different computations; and a kill -9
mid-sync loses at most the in-flight entry (orphaned staging files are
swept, published bytes are never torn).
"""

import json
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.timing import PartitionTiming
from repro.errors import UserInputError
from repro.faults.plan import STORAGE_FAULT_TARGETS, StorageFault
from repro.fleet.journal import apply_storage_fault
from repro.perf import PerfConfig, SharedTimingStore, configure_cache, get_cache
from repro.perf.sharedcache import (
    CACHE_QUARANTINE_SCHEMA,
    SHARED_CACHE_SCHEMA,
    encode_entry,
    entry_paths,
)
from repro.perf.simcache import SimulationCache, timing_key


@pytest.fixture(autouse=True)
def restore_global_cache():
    """Tests that touch the process-global cache leave it single-tier."""
    yield
    configure_cache(enabled=True, shared_dir=None)
    get_cache().clear()


def _timing(n: int = 1) -> PartitionTiming:
    return PartitionTiming(
        compute_cycles=float(n), store_cycles=2.0, switch_cycles=3.0,
        num_edges=n, num_sets=1,
    )


def _key(n: int = 0) -> str:
    return format(n, "x").rjust(64, "0")


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        assert store.put(_key(1), _timing(7), "cfg") is True
        assert store.get(_key(1), "cfg") == _timing(7)
        assert store.writes == 1 and store.quarantined == 0

    def test_get_missing_is_a_plain_miss(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        assert store.get(_key(2)) is None
        assert store.load_misses == 1 and store.quarantined == 0

    def test_entry_file_is_canonical_encoding(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        store.put(_key(3), _timing(3), "cfg")
        raw = store.entry_path(_key(3)).read_text()
        assert raw == encode_entry(_key(3), _timing(3), "cfg")
        record = json.loads(raw)
        assert record["schema"] == SHARED_CACHE_SCHEMA

    def test_non_hex_key_is_rejected(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        with pytest.raises(UserInputError):
            store.put("not-a-key", _timing())

    def test_entry_paths_maps_published_keys(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        store.put(_key(4), _timing(4))
        assert entry_paths(tmp_path) == {_key(4): store.entry_path(_key(4))}


class TestFirstWriteWins:
    def test_second_put_is_a_conflict_not_a_replace(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        assert store.put(_key(1), _timing(1)) is True
        before = store.entry_path(_key(1)).read_bytes()
        assert store.put(_key(1), _timing(999)) is False
        assert store.entry_path(_key(1)).read_bytes() == before
        assert store.write_conflicts == 1
        assert store.get(_key(1)) == _timing(1)

    def test_concurrent_writers_publish_intact_entries(self, tmp_path):
        keys = [_key(n) for n in range(6)]
        with ProcessPoolExecutor(max_workers=3) as pool:
            written = list(pool.map(
                _writer_process, [(str(tmp_path), keys)] * 3
            ))
        store = SharedTimingStore(tmp_path, fsync=False)
        assert sorted(store.keys()) == keys
        # Every published file holds exactly the canonical bytes of the
        # one value all racers computed — no torn or interleaved writes.
        for n, key in enumerate(keys):
            assert store.entry_path(key).read_text() == encode_entry(
                key, _timing(n), "cfg"
            )
            assert store.get(key, "cfg") == _timing(n)
        assert sum(written) >= len(keys)  # each key written at least once
        assert not list(tmp_path.glob("*.tmp-*"))


class TestDamageTolerance:
    @pytest.mark.parametrize("kind", ["bit-flip", "torn-write"])
    def test_storage_fault_quarantines_never_serves(self, tmp_path, kind):
        store = SharedTimingStore(tmp_path, fsync=False)
        store.put(_key(1), _timing(1), "cfg")
        note = apply_storage_fault(
            store.entry_path(_key(1)),
            StorageFault(kind=kind, target="shared-cache"),
        )
        assert note
        assert store.get(_key(1), "cfg") is None
        assert store.quarantined == 1
        bundles = store.quarantine_bundles()
        assert [b.name for b in bundles] == [f"{_key(1)}.quarantine.json"]
        bundle = json.loads(bundles[0].read_text())
        assert bundle["schema"] == CACHE_QUARANTINE_SCHEMA
        assert bundle["key"] == _key(1)
        # The entry is gone from the serving path; a re-put recovers it.
        assert store.get(_key(1), "cfg") is None
        assert store.put(_key(1), _timing(1), "cfg") is True
        assert store.get(_key(1), "cfg") == _timing(1)

    def test_stale_config_digest_quarantines(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        store.put(_key(2), _timing(2), "old-config")
        assert store.get(_key(2), "new-config") is None
        assert store.stale == 1 and store.quarantined == 1

    def test_wrong_key_in_valid_record_quarantines(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        store.entry_path(_key(3)).write_text(
            encode_entry(_key(4), _timing(), "cfg")
        )
        assert store.get(_key(3), "cfg") is None
        assert store.quarantined == 1

    def test_verify_sweeps_kill9_leftovers_and_junk(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        store.put(_key(1), _timing(1), "cfg")
        orphan = tmp_path / (_key(9) + ".json.tmp-12345-deadbeef")
        orphan.write_text('{"schema":"regraph-simcache/v1","key":"tor')
        junk = tmp_path / "README.json"
        junk.write_text("hello\n")
        scrub = store.verify("cfg")
        assert scrub == {"entries": 1, "quarantined": 1, "swept_tmp": 1}
        assert not orphan.exists() and not junk.exists()
        assert store.get(_key(1), "cfg") == _timing(1)


class TestTwoTier:
    def test_l1_miss_reads_through_and_promotes(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        store.put(_key(1), _timing(1), "cfg")
        cache = SimulationCache(max_entries=8, shared=store)
        assert cache.get(_key(1), "cfg") == _timing(1)
        assert cache.tier2_hits == 1 and cache.misses == 0
        # Promoted: the second lookup is a pure L1 hit.
        assert cache.get(_key(1), "cfg") == _timing(1)
        assert cache.hits == 1 and cache.tier2_hits == 1

    def test_put_writes_through(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        cache = SimulationCache(max_entries=8, shared=store)
        cache.put(_key(2), _timing(2), "cfg")
        assert store.get(_key(2), "cfg") == _timing(2)

    def test_clear_keeps_shared_files(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        cache = SimulationCache(max_entries=8, shared=store)
        cache.put(_key(3), _timing(3), "cfg")
        cache.clear()
        assert len(cache) == 0 and len(store) == 1

    def test_warm_start_adopts_verified_entries(self, tmp_path):
        store = SharedTimingStore(tmp_path, fsync=False)
        for n in range(4):
            store.put(_key(n), _timing(n), "cfg")
        apply_storage_fault(
            store.entry_path(_key(0)),
            StorageFault(kind="bit-flip", target="shared-cache"),
        )
        cache = SimulationCache(max_entries=8)
        assert store.warm(cache) == 3  # the damaged one quarantines
        assert store.quarantined == 1
        for n in range(1, 4):
            assert cache.contains(_key(n))

    def test_perf_config_attaches_the_shared_tier(self, tmp_path):
        perf = PerfConfig(shared_cache_dir=str(tmp_path / "sc"))
        perf.apply()
        cache = get_cache()
        assert cache.shared is not None
        assert cache.shared.root == tmp_path / "sc"
        assert perf.to_dict()["shared_cache_dir"] == str(tmp_path / "sc")
        assert PerfConfig.from_dict(perf.to_dict()) == perf

    def test_shared_cache_is_a_storage_fault_target(self):
        assert "shared-cache" in STORAGE_FAULT_TARGETS


FINITE = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        compute=FINITE, store_c=FINITE, switch=FINITE,
        edges=st.integers(min_value=0, max_value=2**40),
        sets=st.integers(min_value=0, max_value=2**20),
        digest=st.text(
            alphabet="0123456789abcdef", min_size=0, max_size=64
        ),
    )
    def test_round_trip_is_bit_exact(
        self, tmp_path_factory, compute, store_c, switch, edges, sets,
        digest,
    ):
        timing = PartitionTiming(
            compute_cycles=compute, store_cycles=store_c,
            switch_cycles=switch, num_edges=edges, num_sets=sets,
        )
        store = SharedTimingStore(
            tmp_path_factory.mktemp("shared"), fsync=False
        )
        assert store.put(_key(1), timing, digest)
        loaded = store.get(_key(1), digest)
        assert loaded == timing
        assert store.quarantined == 0

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.tuples(
            st.binary(min_size=0, max_size=8),
            st.integers(min_value=1, max_value=64),
            st.lists(st.integers(0, 255), min_size=0, max_size=8),
        ),
        b=st.tuples(
            st.binary(min_size=0, max_size=8),
            st.integers(min_value=1, max_value=64),
            st.lists(st.integers(0, 255), min_size=0, max_size=8),
        ),
    )
    def test_cross_tier_keys_are_injective(self, a, b):
        """Same key <=> same (prefix, edge width, edge content).

        Both tiers address by this key, so injectivity is what makes a
        tier-2 hit interchangeable with recomputation.
        """
        def key(t):
            prefix, edge_bytes, values = t
            return timing_key(
                prefix, edge_bytes,
                (np.asarray(values, dtype=np.int64),),
            )

        assert (key(a) == key(b)) == (a == b)


def _writer_process(job):
    """Racer: publish every key into the same store directory."""
    root, keys = job
    store = SharedTimingStore(root, fsync=False)
    written = 0
    for n, key in enumerate(keys):
        if store.put(key, _timing(n), "cfg"):
            written += 1
    return written
