"""Tests for partition workload statistics (the Fig. 2 profile)."""

import numpy as np

from repro.graph.partition import partition_graph
from repro.graph.reorder import degree_based_grouping, identity_ordering
from repro.graph.stats import (
    diversity_summary,
    profile_partitions,
)


class TestProfiles:
    def test_fractions_sum_to_one(self, rmat_partitions):
        profiles = profile_partitions(rmat_partitions)
        assert sum(p.edge_fraction for p in profiles) == 1.0 or \
            abs(sum(p.edge_fraction for p in profiles) - 1.0) < 1e-9

    def test_percent_scaling(self, rmat_partitions):
        profiles = profile_partitions(rmat_partitions)
        for p in profiles[:3]:
            assert p.edge_percent == 100.0 * p.edge_fraction

    def test_src_fraction_bounded(self, rmat_partitions):
        for p in profile_partitions(rmat_partitions):
            assert 0.0 <= p.src_fraction <= 1.0

    def test_empty_partitions_dropped_by_default(self, small_rmat):
        pset = partition_graph(small_rmat, 64)
        with_empty = profile_partitions(pset, include_empty=True)
        without = profile_partitions(pset)
        assert len(with_empty) == pset.num_partitions
        assert len(without) <= len(with_empty)


class TestFig2Claims:
    """Qualitative claims of Fig. 2 on the RMAT stand-in."""

    def test_first_partition_dense_after_dbg(self, small_rmat):
        dbg = degree_based_grouping(small_rmat)
        pset = partition_graph(dbg.graph, 512)
        profiles = profile_partitions(pset)
        # The first partition concentrates a large share of edges.
        assert profiles[0].edge_percent > 20.0

    def test_tail_partitions_sparse_after_dbg(self, small_rmat):
        dbg = degree_based_grouping(small_rmat)
        pset = partition_graph(dbg.graph, 512)
        profiles = profile_partitions(pset)
        assert profiles[-1].edge_percent < profiles[0].edge_percent / 5

    def test_dbg_increases_head_concentration(self, small_rmat):
        base = identity_ordering(small_rmat)
        dbg = degree_based_grouping(small_rmat)
        prof_base = profile_partitions(partition_graph(base.graph, 512))
        prof_dbg = profile_partitions(partition_graph(dbg.graph, 512))
        head_base = max(p.edge_percent for p in prof_base)
        head_dbg = prof_dbg[0].edge_percent
        assert head_dbg >= head_base

    def test_dense_partitions_access_more_sources(self, small_rmat):
        dbg = degree_based_grouping(small_rmat)
        pset = partition_graph(dbg.graph, 512)
        profiles = profile_partitions(pset)
        assert profiles[0].src_percent > profiles[-1].src_percent


class TestDiversitySummary:
    def test_imbalance_positive(self, rmat_partitions):
        summary = diversity_summary(profile_partitions(rmat_partitions))
        assert summary["imbalance"] >= 1.0

    def test_empty_profiles(self):
        summary = diversity_summary([])
        assert summary["imbalance"] == 0.0

    def test_uniform_graph_less_diverse_than_rmat(
        self, small_rmat, small_uniform
    ):
        def imbalance(graph):
            dbg = degree_based_grouping(graph)
            pset = partition_graph(dbg.graph, 256)
            return diversity_summary(profile_partitions(pset))["imbalance"]

        assert imbalance(small_rmat) > imbalance(small_uniform)
