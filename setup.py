"""Setup shim: the offline environment lacks the `wheel` package, so the
PEP 517 editable build (bdist_wheel) cannot run; this enables the legacy
`pip install -e . --no-use-pep517` path."""
from setuptools import setup

setup()
